"""A small, self-contained numpy deep-learning substrate.

The paper's FL task executor wraps PyTorch (§5.2); this subpackage provides
the equivalent capability without any framework: dense layers with manual
backprop, standard losses, SGD with momentum, simple classifier models, and
synthetic datasets shaped like the paper's three tasks (CIFAR10-like image
vectors, IMDB-like bag-of-words).  It is enough for FedAvg to genuinely
converge in the examples, while the energy benchmarks can swap in a
simulated executor for speed (the energy results never depend on gradient
values — a job is a job).
"""

from repro.ml.layers import Dense, Dropout, Layer, ReLU, Sequential, Tanh
from repro.ml.losses import binary_cross_entropy, softmax_cross_entropy
from repro.ml.optim import SGD
from repro.ml.models import MLPClassifier
from repro.ml.data import (
    Dataset,
    make_blobs_classification,
    make_text_sentiment,
    partition_dirichlet,
    partition_iid,
)
from repro.ml.training import LocalTrainer, accuracy
from repro.ml.fedprox import FedProxTrainer

__all__ = [
    "Dataset",
    "Dense",
    "Dropout",
    "FedProxTrainer",
    "Layer",
    "LocalTrainer",
    "MLPClassifier",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "accuracy",
    "binary_cross_entropy",
    "make_blobs_classification",
    "make_text_sentiment",
    "partition_dirichlet",
    "partition_iid",
    "softmax_cross_entropy",
]
