"""Local training loops — the computation behind one FL 'job'.

:class:`LocalTrainer` is the real-gradient counterpart of the simulated job
executor: calling :meth:`train_job` runs one minibatch of SGD, exactly the
unit of work whose latency/energy the hardware simulator prices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.data import Dataset
from repro.ml.models import MLPClassifier
from repro.ml.optim import SGD


def accuracy(model: MLPClassifier, dataset: Dataset) -> float:
    """Top-1 accuracy of ``model`` on ``dataset``."""
    if len(dataset) == 0:
        raise ConfigurationError("cannot evaluate on an empty dataset")
    return float(np.mean(model.predict(dataset.x) == dataset.y))


class LocalTrainer:
    """Runs epochs of minibatch SGD over one client's private shard.

    The job sequence matches the paper's §3.1: each round covers ``E``
    epochs of ``N`` minibatches, i.e. ``W = E x N`` jobs, re-shuffled per
    epoch.
    """

    def __init__(
        self,
        model: MLPClassifier,
        data: Dataset,
        batch_size: int,
        optimizer: Optional[SGD] = None,
        seed: int = 0,
    ) -> None:
        if len(data) < batch_size:
            raise ConfigurationError(
                f"client shard has {len(data)} samples < batch size {batch_size}"
            )
        self.model = model
        self.data = data
        self.batch_size = batch_size
        self.optimizer = optimizer if optimizer is not None else SGD(0.05, momentum=0.9)
        self._rng = np.random.default_rng(seed)
        self._queue: list[Dataset] = []
        self.jobs_run = 0
        self.last_loss: Optional[float] = None

    @property
    def minibatches_per_epoch(self) -> int:
        """``N`` in the paper's notation."""
        return (len(self.data) + self.batch_size - 1) // self.batch_size

    def start_round(self, epochs: int) -> int:
        """Queue ``E`` epochs of shuffled minibatches; returns ``W``."""
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        self._queue = []
        for _ in range(epochs):
            self._queue.extend(self.data.batches(self.batch_size, self._rng))
        return len(self._queue)

    @property
    def jobs_remaining(self) -> int:
        return len(self._queue)

    def train_job(self) -> float:
        """Run one queued minibatch (one 'job'); returns the batch loss."""
        if not self._queue:
            raise ConfigurationError("no jobs queued; call start_round() first")
        batch = self._queue.pop(0)
        loss = self.model.loss_and_backward(batch.x, batch.y)
        self.optimizer.step(self.model.parameters, self.model.gradients)
        self.jobs_run += 1
        self.last_loss = loss
        return loss
