"""Classification losses with analytic gradients w.r.t. the logits."""

from __future__ import annotations


import numpy as np

from repro.errors import ConfigurationError


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient w.r.t. ``logits``.

    ``labels`` are integer class indices of shape ``(batch,)``.
    """
    logits = np.atleast_2d(np.asarray(logits, dtype=float))
    labels = np.asarray(labels, dtype=int).ravel()
    batch, n_classes = logits.shape
    if labels.size != batch:
        raise ConfigurationError(f"got {labels.size} labels for {batch} logits rows")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= n_classes:
        raise ConfigurationError("labels out of range for the logits width")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    eps = 1e-12
    loss = -float(np.mean(np.log(probs[np.arange(batch), labels] + eps)))
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


def binary_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean sigmoid BCE and its gradient w.r.t. one-column ``logits``.

    ``labels`` are 0/1 of shape ``(batch,)``.
    """
    logits = np.asarray(logits, dtype=float).reshape(-1, 1)
    labels = np.asarray(labels, dtype=float).ravel()
    if labels.size != logits.shape[0]:
        raise ConfigurationError(f"got {labels.size} labels for {logits.shape[0]} logits")
    if np.any((labels != 0) & (labels != 1)):
        raise ConfigurationError("binary labels must be 0 or 1")
    z = logits.ravel()
    # numerically stable log(1 + exp(-|z|)) formulation
    loss = float(np.mean(np.maximum(z, 0) - z * labels + np.log1p(np.exp(-np.abs(z)))))
    probs = 1.0 / (1.0 + np.exp(-z))
    grad = ((probs - labels) / labels.size).reshape(-1, 1)
    return loss, grad
