"""Neural-network layers with explicit forward/backward passes.

Every layer exposes ``forward(x, training)``, ``backward(grad)`` (returning
the gradient w.r.t. its input and stashing parameter gradients), and its
``parameters`` / ``gradients`` as flat lists so optimizers and FedAvg can
treat a model as a vector of arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class Layer(ABC):
    """Base class for differentiable layers."""

    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``."""

    @abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output``; return grad w.r.t. the input."""

    @property
    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays (may be empty)."""
        return []

    @property
    def gradients(self) -> list[np.ndarray]:
        """Gradients aligned with :attr:`parameters` (after backward)."""
        return []


class Dense(Layer):
    """Fully connected layer ``y = x W + b`` with He-style init."""

    def __init__(self, in_features: int, out_features: int, rng: Optional[np.random.Generator] = None) -> None:
        if in_features < 1 or out_features < 1:
            raise ConfigurationError("Dense layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x if training else None
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ConfigurationError("backward() before forward(training=True)")
        self.grad_weight = self._input.T @ grad_output
        self.grad_bias = grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigurationError("backward() before forward(training=True)")
        return grad_output * self._mask


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ConfigurationError("backward() before forward(training=True)")
        return grad_output * (1.0 - self._output**2)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must lie in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None if not training else np.ones_like(x)
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigurationError("backward() before forward(training=True)")
        return grad_output * self._mask


class Sequential(Layer):
    """A layer stack applied in order."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ConfigurationError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    @property
    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients]
