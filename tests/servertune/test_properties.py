"""Property-based (Hypothesis) tests for the servertune subsystem.

The contracts pinned as properties rather than examples:

* every knob a controller ever emits lies inside the bounds its spec
  declares, for arbitrary feedback sequences;
* controllers are deterministic state machines — identical spec +
  identical feedback sequence means an identical knob trajectory, in
  any process (they carry no RNG at all);
* the static spec is a true no-op: it normalizes out of cache keys and
  reproduces pre-subsystem campaign records byte-for-byte.

CI runs these with ``--hypothesis-seed=0`` for reproducible examples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.servertune.controllers import (
    RoundFeedback,
    ServerTuneSpec,
    make_server_controller,
    normalize_servertune,
)

POSITIVE = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)
COUNTS = st.integers(min_value=0, max_value=200)


@st.composite
def feedback_sequences(draw, max_rounds=12):
    """Arbitrary (but internally consistent) round feedback histories."""
    n_rounds = draw(st.integers(min_value=1, max_value=max_rounds))
    sequence = []
    for index in range(n_rounds):
        participants = draw(st.integers(min_value=1, max_value=200))
        stragglers = draw(st.integers(min_value=0, max_value=participants))
        buffered = participants - stragglers
        sequence.append(
            RoundFeedback(
                round_index=index,
                participants=participants,
                buffered=buffered,
                stragglers=stragglers,
                energy=draw(POSITIVE),
                latency=draw(POSITIVE),
            )
        )
    return sequence


@st.composite
def adaptive_specs(draw):
    """Valid non-static specs across the whole configuration surface."""
    controller = draw(st.sampled_from(["fedgpo", "fedtune"]))
    lower = draw(st.floats(min_value=0.01, max_value=0.2))
    upper = draw(st.floats(min_value=0.25, max_value=0.9))
    return ServerTuneSpec(
        controller=controller,
        deadline_step=draw(st.floats(min_value=0.01, max_value=0.9)),
        participation_step=draw(st.floats(min_value=0.01, max_value=0.9)),
        straggler_lower=lower,
        straggler_upper=upper,
        smoothing=draw(st.floats(min_value=0.05, max_value=1.0)),
        patience=draw(st.integers(min_value=0, max_value=4)),
        min_deadline_scale=draw(st.floats(min_value=0.1, max_value=1.0)),
        max_deadline_scale=draw(st.floats(min_value=1.0, max_value=4.0)),
        min_participation=draw(st.floats(min_value=0.05, max_value=1.0)),
    )


class TestKnobBounds:
    @settings(deadline=None, max_examples=60)
    @given(spec=adaptive_specs(), sequence=feedback_sequences())
    def test_knobs_stay_inside_declared_bounds(self, spec, sequence):
        controller = make_server_controller(spec)
        for step, feedback in enumerate(sequence):
            knobs = controller.knobs_for(step)
            assert (
                spec.min_deadline_scale - 1e-9
                <= knobs.deadline_scale
                <= spec.max_deadline_scale + 1e-9
            )
            assert (
                spec.min_participation - 1e-9
                <= knobs.participation
                <= 1.0 + 1e-9
            )
            assert knobs.buffer_scale > 0.0
            controller.observe(feedback)
        final = controller.knobs_for(len(sequence))
        assert spec.min_deadline_scale - 1e-9 <= final.deadline_scale


class TestTrajectoryDeterminism:
    @settings(deadline=None, max_examples=60)
    @given(spec=adaptive_specs(), sequence=feedback_sequences())
    def test_identical_feedback_means_identical_trajectory(
        self, spec, sequence
    ):
        """Controllers carry no RNG: the trajectory is a pure function of
        (spec, feedback), so two independent instances stay in lockstep."""
        first = make_server_controller(spec)
        second = make_server_controller(spec)
        for step, feedback in enumerate(sequence):
            assert first.knobs_for(step) == second.knobs_for(step)
            first.observe(feedback)
            second.observe(feedback)
        assert first.knobs_for(len(sequence)) == second.knobs_for(len(sequence))

    @settings(deadline=None, max_examples=60)
    @given(spec=adaptive_specs(), sequence=feedback_sequences())
    def test_reset_replays_the_same_trajectory(self, spec, sequence):
        controller = make_server_controller(spec)
        first_pass = []
        for step, feedback in enumerate(sequence):
            first_pass.append(controller.knobs_for(step))
            controller.observe(feedback)
        controller.reset()
        for step, feedback in enumerate(sequence):
            assert controller.knobs_for(step) == first_pass[step]
            controller.observe(feedback)


class TestStaticIsANoOp:
    """The static spec must be indistinguishable from no subsystem at all."""

    def test_static_spec_normalizes_out_of_cache_keys(self):
        from repro.sim.runner import campaign_key

        bare = campaign_key("agx", "vit", "performant", 2.0, 3, 0)
        static = campaign_key(
            "agx", "vit", "performant", 2.0, 3, 0,
            servertune=normalize_servertune(ServerTuneSpec()),
        )
        assert bare == static

    def test_static_spec_reproduces_pre_subsystem_records(self, tmp_path):
        """Same records, and the byte-identical deterministic trace."""
        from repro.obs import runtime as obs
        from repro.sim import clear_campaign_cache
        from repro.sim.runner import run_campaign

        clear_campaign_cache()
        with obs.session(deterministic=True) as session:
            bare = run_campaign(
                "agx", "vit", "performant", 2.0,
                rounds=3, seed=0, use_cache=False,
            )
        bare_trace = session.log.dump_jsonl(tmp_path / "bare.jsonl")
        with obs.session(deterministic=True) as session:
            static = run_campaign(
                "agx", "vit", "performant", 2.0,
                rounds=3, seed=0, use_cache=False,
                servertune=ServerTuneSpec(),
            )
        static_trace = session.log.dump_jsonl(tmp_path / "static.jsonl")
        assert static.records == bare.records
        assert static.total_energy == bare.total_energy
        assert static_trace.read_bytes() == bare_trace.read_bytes()
