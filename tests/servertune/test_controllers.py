"""Unit tests for the server-side knob controllers.

The determinism-critical behaviours pinned here: knob validation, the
static spec's no-op normalization (the cache-key contract), FedGPO's
EWMA-driven widen/tighten moves, and FedTune's direction-reversal plus
patience halt.
"""

import pytest

from repro.errors import ConfigurationError
from repro.servertune.controllers import (
    DEFAULT_KNOBS,
    FedGPOController,
    FedTuneController,
    RoundFeedback,
    ServerKnobs,
    ServerTuneSpec,
    StaticKnobs,
    make_server_controller,
    normalize_servertune,
)


def feedback(
    round_index=0,
    participants=10,
    buffered=10,
    stragglers=0,
    energy=100.0,
    latency=10.0,
):
    return RoundFeedback(
        round_index=round_index,
        participants=participants,
        buffered=buffered,
        stragglers=stragglers,
        energy=energy,
        latency=latency,
    )


class TestServerKnobs:
    def test_defaults_are_identity(self):
        assert DEFAULT_KNOBS.is_default
        assert ServerKnobs(deadline_scale=1.1).is_default is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_scale": 0.0},
            {"deadline_scale": -1.0},
            {"participation": 0.0},
            {"participation": 1.5},
            {"buffer_scale": 0.0},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServerKnobs(**kwargs)


class TestRoundFeedback:
    def test_straggler_rate_and_energy_per_report(self):
        fb = feedback(participants=8, buffered=6, stragglers=2, energy=120.0)
        assert fb.straggler_rate == pytest.approx(0.25)
        assert fb.energy_per_report == pytest.approx(20.0)

    def test_degenerate_rounds_do_not_divide_by_zero(self):
        fb = feedback(participants=0, buffered=0, stragglers=0, energy=5.0)
        assert fb.straggler_rate == 0.0
        assert fb.energy_per_report == 5.0


class TestServerTuneSpec:
    def test_static_is_default(self):
        assert ServerTuneSpec().is_static
        assert not ServerTuneSpec(controller="fedgpo").is_static

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"controller": "nope"},
            {"deadline_step": 0.0},
            {"deadline_step": 1.0},
            {"participation_step": -0.1},
            {"straggler_upper": 0.05, "straggler_lower": 0.25},
            {"smoothing": 0.0},
            {"alpha_time": -1.0},
            {"alpha_time": 0.0, "alpha_energy": 0.0},
            {"patience": -1},
            {"min_deadline_scale": 0.0},
            {"min_deadline_scale": 1.2},
            {"max_deadline_scale": 0.9},
            {"min_participation": 0.0},
        ],
    )
    def test_rejects_invalid_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServerTuneSpec(**kwargs)

    def test_to_dict_round_trips(self):
        spec = ServerTuneSpec(
            controller="fedtune", deadline_step=0.2, patience=4, smoothing=0.7
        )
        assert ServerTuneSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            ServerTuneSpec.from_dict("not a dict")
        with pytest.raises(ConfigurationError):
            ServerTuneSpec.from_dict({"controller": "fedgpo", "bogus": 1})

    def test_normalize_maps_static_to_none(self):
        assert normalize_servertune(None) is None
        assert normalize_servertune(ServerTuneSpec()) is None
        adaptive = ServerTuneSpec(controller="fedgpo")
        assert normalize_servertune(adaptive) is adaptive


class TestMakeServerController:
    def test_dispatch(self):
        assert isinstance(make_server_controller(None), StaticKnobs)
        assert isinstance(
            make_server_controller(ServerTuneSpec()), StaticKnobs
        )
        assert isinstance(
            make_server_controller(ServerTuneSpec(controller="fedgpo")),
            FedGPOController,
        )
        assert isinstance(
            make_server_controller(ServerTuneSpec(controller="fedtune")),
            FedTuneController,
        )


class TestStaticKnobs:
    def test_always_identity(self):
        controller = StaticKnobs(ServerTuneSpec())
        for i in range(5):
            controller.observe(feedback(round_index=i, stragglers=10))
            assert controller.knobs_for(i) is DEFAULT_KNOBS


class TestFedGPO:
    def spec(self, **kwargs):
        kwargs.setdefault("controller", "fedgpo")
        return ServerTuneSpec(**kwargs)

    def test_straggler_heavy_rounds_widen_the_deadline(self):
        controller = FedGPOController(self.spec(deadline_step=0.2))
        controller.observe(feedback(participants=10, buffered=4, stragglers=6))
        knobs = controller.knobs_for(1)
        assert knobs.deadline_scale == pytest.approx(1.2)

    def test_comfortable_rounds_tighten_and_shed_participants(self):
        controller = FedGPOController(
            self.spec(deadline_step=0.1, participation_step=0.2)
        )
        controller.observe(feedback(stragglers=0))
        knobs = controller.knobs_for(1)
        assert knobs.deadline_scale == pytest.approx(0.9)
        assert knobs.participation == pytest.approx(0.8)

    def test_between_thresholds_holds_steady(self):
        controller = FedGPOController(
            self.spec(straggler_lower=0.05, straggler_upper=0.5)
        )
        controller.observe(feedback(participants=10, buffered=9, stragglers=1))
        assert controller.knobs_for(1) == controller.knobs_for(0)
        assert controller.knobs_for(1).deadline_scale == pytest.approx(1.0)

    def test_knobs_for_is_a_pure_read(self):
        controller = FedGPOController(self.spec())
        controller.observe(feedback(stragglers=10, buffered=0))
        first = controller.knobs_for(1)
        for _ in range(3):
            assert controller.knobs_for(1) == first

    def test_clamped_into_declared_bounds(self):
        spec = self.spec(
            deadline_step=0.3,
            participation_step=0.3,
            min_deadline_scale=0.7,
            max_deadline_scale=1.4,
            min_participation=0.5,
        )
        widen = FedGPOController(spec)
        tighten = FedGPOController(spec)
        for i in range(20):
            widen.observe(feedback(round_index=i, buffered=0, stragglers=10))
            tighten.observe(feedback(round_index=i, stragglers=0))
        assert widen.knobs_for(20).deadline_scale == pytest.approx(1.4)
        assert tighten.knobs_for(20).deadline_scale == pytest.approx(0.7)
        assert tighten.knobs_for(20).participation == pytest.approx(0.5)

    def test_reset_restores_initial_state(self):
        controller = FedGPOController(self.spec())
        controller.observe(feedback(buffered=0, stragglers=10))
        assert not controller.knobs_for(1).is_default
        controller.reset()
        assert controller.knobs_for(0).is_default
        assert controller.straggler_ewma is None


class TestFedTune:
    def spec(self, **kwargs):
        kwargs.setdefault("controller", "fedtune")
        return ServerTuneSpec(**kwargs)

    def test_initial_direction_tightens(self):
        controller = FedTuneController(self.spec(deadline_step=0.1))
        controller.observe(feedback(energy=100.0, latency=10.0))
        assert controller.knobs_for(1).deadline_scale == pytest.approx(0.9)

    def test_worsening_score_reverses_course(self):
        controller = FedTuneController(self.spec(deadline_step=0.1))
        controller.observe(feedback(energy=100.0, latency=10.0))
        tightened = controller.knobs_for(1).deadline_scale
        # Much worse round: the controller must reverse, moving back up.
        controller.observe(feedback(energy=500.0, latency=50.0))
        assert controller.knobs_for(2).deadline_scale > tightened

    def test_patience_raises_the_halt_knob(self):
        controller = FedTuneController(self.spec(patience=2))
        controller.observe(feedback(energy=100.0, latency=10.0))
        assert not controller.halted
        for i in range(1, 4):
            controller.observe(
                feedback(round_index=i, energy=200.0, latency=20.0)
            )
        assert controller.halted
        assert controller.knobs_for(5).halt

    def test_zero_patience_never_halts(self):
        controller = FedTuneController(self.spec(patience=0))
        for i in range(10):
            controller.observe(
                feedback(round_index=i, energy=200.0, latency=20.0)
            )
        assert not controller.halted

    def test_score_before_baseline_raises(self):
        controller = FedTuneController(self.spec())
        with pytest.raises(ConfigurationError):
            controller._score(feedback())

    def test_reset_restores_initial_state(self):
        controller = FedTuneController(self.spec(patience=1))
        for i in range(4):
            controller.observe(feedback(round_index=i, energy=200.0 + i))
        assert controller.halted
        controller.reset()
        assert not controller.halted
        assert controller.knobs_for(0).is_default
