"""PBT driver tests: determinism, resume, and the frontier artifact.

The load-bearing assertions mirror the CI ``servertune-smoke`` job:
same-seed PBT runs — serial or sharded over workers — must produce
byte-identical deterministic traces, identical surviving populations,
and identical frontier artifacts; an interrupted run resumed from its
serialized :class:`PBTState` must land on exactly the trajectory the
uninterrupted run took.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import runtime as obs
from repro.servertune.controllers import ServerTuneSpec
from repro.servertune.pbt import (
    PBT_CONTROLLERS,
    SEARCH_SPACE,
    MemberRecord,
    PBTResult,
    PBTSpec,
    PBTState,
    init_population,
    member_rng,
    pareto_front,
    render_frontier_artifact,
    run_pbt,
)
from repro.sim import clear_campaign_cache
from repro.sim.fleet import FleetSpec

#: Tiny on purpose: 2 archetypes means prepare_fleet computes two traces
#: and every member evaluation is a cheap pure composition.
SMALL_FLEET = FleetSpec(n_clients=6, rounds=2, archetypes=2, seed=0)
SMALL_PBT = PBTSpec(population=2, generations=2, seed=0)


@pytest.fixture(scope="module", autouse=True)
def _clean_cache():
    clear_campaign_cache()
    yield
    clear_campaign_cache()


def record(generation=0, member=0, energy=1.0, latency=1.0, score=1.0):
    return MemberRecord(
        generation=generation,
        member=member,
        controller="fedgpo",
        score=score,
        energy_per_aggregation=energy,
        mean_latency=latency,
        aggregations=4,
        total_energy=energy * 4,
        makespan=latency * 4,
        spec=ServerTuneSpec(controller="fedgpo"),
    )


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population": 1},
            {"generations": 0},
            {"exploit_fraction": 0.0},
            {"exploit_fraction": 1.0},
            {"explore_factors": ()},
            {"explore_factors": (0.0,)},
            {"controllers": ()},
            {"controllers": ("static",)},
            {"controllers": ("nope",)},
            {"alpha_energy": -1.0},
            {"alpha_energy": 0.0, "alpha_time": 0.0},
            {"patience": -1},
        ],
    )
    def test_rejects_invalid_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            PBTSpec(**kwargs)

    def test_elite_count_floors_at_one(self):
        assert PBTSpec(population=2, exploit_fraction=0.25).elite_count == 1
        assert PBTSpec(population=8, exploit_fraction=0.25).elite_count == 2


class TestInitPopulation:
    def test_members_sampled_inside_search_space(self):
        members = init_population(PBTSpec(population=8, seed=3))
        assert len(members) == 8
        for member in members:
            for name, (lo, hi) in SEARCH_SPACE.items():
                assert lo <= getattr(member, name) <= hi

    def test_controllers_seeded_round_robin(self):
        members = init_population(PBTSpec(population=4, seed=0))
        expected = [
            PBT_CONTROLLERS[i % len(PBT_CONTROLLERS)] for i in range(4)
        ]
        assert [m.controller for m in members] == expected

    def test_same_seed_same_population(self):
        spec = PBTSpec(population=6, seed=11)
        assert init_population(spec) == init_population(spec)
        shifted = PBTSpec(population=6, seed=12)
        assert init_population(spec) != init_population(shifted)

    def test_member_rng_is_addressed_not_streamed(self):
        a = member_rng(0, 1, 2).uniform()
        b = member_rng(0, 1, 2).uniform()
        assert a == b
        assert member_rng(0, 1, 3).uniform() != a


class TestParetoFront:
    def test_strictly_dominated_points_removed(self):
        good = record(member=0, energy=1.0, latency=1.0)
        dominated = record(member=1, energy=2.0, latency=2.0)
        tradeoff = record(member=2, energy=0.5, latency=3.0)
        front = pareto_front([good, dominated, tradeoff])
        assert dominated not in front
        assert good in front and tradeoff in front

    def test_ties_survive(self):
        a = record(member=0, energy=1.0, latency=2.0)
        b = record(member=1, energy=1.0, latency=1.0)
        # a is not *strictly* worse on energy, so it survives.
        assert pareto_front([a, b]) == [b, a]

    def test_sorted_by_energy(self):
        points = [
            record(member=i, energy=float(5 - i), latency=float(i + 1))
            for i in range(5)
        ]
        front = pareto_front(points)
        energies = [r.energy_per_aggregation for r in front]
        assert energies == sorted(energies)


class TestStateRoundTrip:
    def test_state_survives_json(self):
        state = PBTState(
            next_generation=2,
            members=init_population(PBTSpec(population=3, seed=5)),
            history=[record(), record(generation=1, member=1, score=0.9)],
        )
        raw = json.loads(json.dumps(state.to_dict(), sort_keys=True))
        assert PBTState.from_dict(raw).to_dict() == state.to_dict()

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            PBTState.from_dict({"kind": "nope"})
        with pytest.raises(ConfigurationError):
            PBTState.from_dict({"kind": "pbt_state", "members": 3})


class TestRunPBT:
    def test_rejects_fleet_with_servertune(self):
        tuned = FleetSpec(
            n_clients=4, rounds=2,
            servertune=ServerTuneSpec(controller="fedgpo"),
        )
        with pytest.raises(ConfigurationError):
            run_pbt(SMALL_PBT, tuned)

    def test_rejects_population_mismatch_on_resume(self):
        state = PBTState(members=init_population(PBTSpec(population=4)))
        with pytest.raises(ConfigurationError):
            run_pbt(SMALL_PBT, SMALL_FLEET, state=state)

    def test_serial_and_sharded_runs_are_byte_identical(self, tmp_path):
        with obs.session(deterministic=True) as session:
            serial = run_pbt(SMALL_PBT, SMALL_FLEET)
        serial_trace = session.log.dump_jsonl(tmp_path / "serial.jsonl")
        with obs.session(deterministic=True) as session:
            sharded = run_pbt(SMALL_PBT, SMALL_FLEET, workers=4)
        sharded_trace = session.log.dump_jsonl(tmp_path / "sharded.jsonl")
        assert serial_trace.read_bytes() == sharded_trace.read_bytes()
        assert serial.to_dict() == sharded.to_dict()
        assert serial.population == sharded.population

    def test_resume_lands_on_the_uninterrupted_trajectory(self):
        full = run_pbt(SMALL_PBT, SMALL_FLEET)
        partial = run_pbt(
            PBTSpec(population=2, generations=1, seed=0), SMALL_FLEET
        )
        resumed = run_pbt(SMALL_PBT, SMALL_FLEET, state=partial.state)
        assert resumed.history == full.history
        assert resumed.population == full.population
        assert resumed.to_dict() == full.to_dict()

    def test_baseline_scores_one_and_members_are_scored_against_it(self):
        result = run_pbt(SMALL_PBT, SMALL_FLEET)
        assert result.baseline.score == 1.0
        assert result.baseline.controller == "static"
        assert len(result.history) == (
            SMALL_PBT.population * SMALL_PBT.generations
        )
        assert all(r.score > 0 for r in result.history)
        assert result.frontier  # never empty: the baseline is a candidate


class TestFrontierArtifact:
    def test_render_round_trips_through_json(self):
        result = run_pbt(SMALL_PBT, SMALL_FLEET)
        raw = json.loads(json.dumps(result.to_dict(), sort_keys=True))
        assert render_frontier_artifact(raw) == result.render()

    def test_rejects_non_artifacts(self):
        with pytest.raises(ConfigurationError):
            render_frontier_artifact({"kind": "pbt_state"})
        with pytest.raises(ConfigurationError):
            render_frontier_artifact({"kind": "pbt_result", "spec": {}})
