"""Unit tests for models, SGD, datasets and the local trainer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ml.data import (
    Dataset,
    make_blobs_classification,
    make_text_sentiment,
    partition_dirichlet,
    partition_iid,
)
from repro.ml.models import MLPClassifier
from repro.ml.optim import SGD
from repro.ml.training import LocalTrainer, accuracy


class TestSGD:
    def test_plain_step(self):
        params = [np.array([1.0, 2.0])]
        grads = [np.array([0.5, -0.5])]
        SGD(learning_rate=0.1).step(params, grads)
        assert params[0] == pytest.approx([0.95, 2.05])

    def test_momentum_accumulates(self):
        opt = SGD(learning_rate=0.1, momentum=0.9)
        params = [np.array([0.0])]
        grads = [np.array([1.0])]
        opt.step(params, grads)
        first = params[0].copy()
        opt.step(params, grads)
        second_step = params[0] - first
        assert abs(second_step[0]) > abs(first[0])  # momentum builds speed

    def test_weight_decay_pulls_toward_zero(self):
        params = [np.array([10.0])]
        SGD(learning_rate=0.1, weight_decay=0.5).step(params, [np.array([0.0])])
        assert params[0][0] < 10.0

    def test_reset_clears_velocity(self):
        opt = SGD(0.1, momentum=0.9)
        params = [np.array([0.0])]
        opt.step(params, [np.array([1.0])])
        opt.reset()
        params2 = [np.array([0.0])]
        opt.step(params2, [np.array([1.0])])
        assert params2[0][0] == pytest.approx(-0.1)

    def test_validates_construction(self):
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            SGD(momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGD(weight_decay=-0.1)

    def test_rejects_mismatched_lists(self):
        with pytest.raises(ConfigurationError):
            SGD().step([np.zeros(2)], [])


class TestMLPClassifier:
    def test_weights_roundtrip(self):
        model = MLPClassifier(8, [6], 3, seed=0)
        weights = model.get_weights()
        other = MLPClassifier(8, [6], 3, seed=1)
        other.set_weights(weights)
        x = np.random.default_rng(0).normal(size=(4, 8))
        assert np.allclose(model.predict_proba(x), other.predict_proba(x))

    def test_set_weights_validates_shapes(self):
        model = MLPClassifier(8, [6], 3)
        bad = model.get_weights()
        bad[0] = np.zeros((2, 2))
        with pytest.raises(ConfigurationError):
            model.set_weights(bad)

    def test_predict_proba_rows_sum_to_one(self, rng):
        model = MLPClassifier(5, [4], 3)
        probs = model.predict_proba(rng.normal(size=(6, 5)))
        assert probs.sum(axis=1) == pytest.approx(np.ones(6))

    def test_learns_separable_problem(self):
        data = make_blobs_classification(600, n_features=8, n_classes=3, seed=0)
        model = MLPClassifier(8, [16], 3, seed=0)
        trainer = LocalTrainer(model, data, batch_size=32, seed=0)
        for _ in range(5):
            trainer.start_round(1)
            while trainer.jobs_remaining:
                trainer.train_job()
        assert accuracy(model, data) > 0.9

    def test_clone_architecture_same_shapes(self):
        model = MLPClassifier(8, [6, 4], 3, seed=0)
        clone = model.clone_architecture(seed=9)
        assert [p.shape for p in clone.parameters] == [p.shape for p in model.parameters]

    def test_rejects_single_class(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(4, [4], 1)


class TestDatasets:
    def test_blobs_shapes_and_labels(self):
        data = make_blobs_classification(100, n_features=16, n_classes=5, seed=0)
        assert data.x.shape == (100, 16)
        assert data.n_classes == 5

    def test_text_sentiment_signal_exists(self):
        data = make_text_sentiment(500, vocabulary=32, seed=0)
        positive = data.x[data.y == 1].mean(axis=0)
        negative = data.x[data.y == 0].mean(axis=0)
        # positive-leaning words occur more in positive documents
        assert positive[0] > negative[0]

    def test_batches_cover_everything(self, rng):
        data = make_blobs_classification(55, seed=0)
        batches = data.batches(10, rng)
        assert sum(len(b) for b in batches) == 55
        assert len(batches) == 6  # tail batch kept

    def test_subset(self):
        data = make_blobs_classification(20, seed=0)
        sub = data.subset(np.array([0, 5, 7]))
        assert len(sub) == 3

    def test_dataset_validates_alignment(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestPartitioning:
    def test_iid_partition_sizes(self, rng):
        data = make_blobs_classification(100, seed=0)
        shards = partition_iid(data, 7, rng)
        assert sum(len(s) for s in shards) == 100
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    def test_dirichlet_partition_covers_everything(self, rng):
        data = make_blobs_classification(300, n_classes=5, seed=0)
        shards = partition_dirichlet(data, 5, alpha=0.5, rng=rng)
        assert sum(len(s) for s in shards) == 300
        assert all(len(s) >= 1 for s in shards)

    def test_dirichlet_low_alpha_skews_labels(self, rng):
        data = make_blobs_classification(2000, n_classes=10, seed=0)
        skewed = partition_dirichlet(data, 10, alpha=0.1, rng=np.random.default_rng(0))
        uniform = partition_dirichlet(data, 10, alpha=100.0, rng=np.random.default_rng(0))

        def mean_class_count(shards):
            return np.mean([len(np.unique(s.y)) for s in shards])

        assert mean_class_count(skewed) < mean_class_count(uniform)

    def test_partition_validates(self, rng):
        data = make_blobs_classification(10, seed=0)
        with pytest.raises(ConfigurationError):
            partition_iid(data, 11, rng)
        with pytest.raises(ConfigurationError):
            partition_dirichlet(data, 3, alpha=0.0, rng=rng)


class TestLocalTrainer:
    @pytest.fixture()
    def trainer(self):
        data = make_blobs_classification(96, n_features=8, n_classes=3, seed=0)
        model = MLPClassifier(8, [8], 3, seed=0)
        return LocalTrainer(model, data, batch_size=32, seed=0)

    def test_minibatches_per_epoch(self, trainer):
        assert trainer.minibatches_per_epoch == 3

    def test_start_round_queues_w_jobs(self, trainer):
        assert trainer.start_round(epochs=4) == 12
        assert trainer.jobs_remaining == 12

    def test_train_job_consumes_queue(self, trainer):
        trainer.start_round(1)
        loss = trainer.train_job()
        assert trainer.jobs_remaining == 2
        assert trainer.jobs_run == 1
        assert loss == trainer.last_loss

    def test_train_job_requires_queue(self, trainer):
        with pytest.raises(ConfigurationError):
            trainer.train_job()

    def test_rejects_shard_smaller_than_batch(self):
        data = make_blobs_classification(10, seed=0)
        with pytest.raises(ConfigurationError):
            LocalTrainer(MLPClassifier(32, [4], 10), data, batch_size=32)

    def test_accuracy_requires_data(self):
        model = MLPClassifier(4, [4], 2)
        with pytest.raises(ConfigurationError):
            accuracy(model, Dataset(np.zeros((0, 4)), np.zeros(0, dtype=int)))
