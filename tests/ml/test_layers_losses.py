"""Unit tests for layers and losses, including numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ml.layers import Dense, Dropout, ReLU, Sequential, Tanh
from repro.ml.losses import binary_cross_entropy, softmax_cross_entropy


def numerical_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = f()
        x[idx] = orig - eps
        down = f()
        x[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(6, 4))
        target = rng.normal(size=(6, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x, training=True) - target) ** 2)

        out = layer.forward(x, training=True)
        layer.backward(out - target)
        num_w = numerical_grad(loss, layer.weight)
        num_b = numerical_grad(loss, layer.bias)
        assert np.allclose(layer.grad_weight, num_w, atol=1e-4)
        assert np.allclose(layer.grad_bias, num_b, atol=1e-4)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Dense(3, 2, rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * np.sum((layer.forward(x, training=True) - target) ** 2)

        out = layer.forward(x, training=True)
        grad_in = layer.backward(out - target)
        assert np.allclose(grad_in, numerical_grad(loss, x), atol=1e-4)

    def test_backward_requires_training_forward(self, rng):
        layer = Dense(2, 2, rng)
        layer.forward(rng.normal(size=(1, 2)), training=False)
        with pytest.raises(ConfigurationError):
            layer.backward(np.zeros((1, 2)))

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 3)


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, Tanh])
    def test_gradient_matches_numerical(self, layer_cls, rng):
        layer = layer_cls()
        x = rng.normal(size=(5, 3)) + 0.1  # avoid ReLU kink at exactly 0
        target = rng.normal(size=(5, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x, training=True) - target) ** 2)

        out = layer.forward(x, training=True)
        grad_in = layer.backward(out - target)
        assert np.allclose(grad_in, numerical_grad(loss, x), atol=1e-4)

    def test_relu_clips_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 2.0]]

    def test_tanh_bounded(self, rng):
        out = Tanh().forward(rng.normal(size=(10, 4)) * 10)
        assert np.all(np.abs(out) <= 1.0)


class TestDropout:
    def test_identity_at_inference(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 4))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_preserves_expectation_in_training(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_rejects_rate_one(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestSequential:
    def test_collects_parameters(self, rng):
        net = Sequential([Dense(4, 3, rng), ReLU(), Dense(3, 2, rng)])
        assert len(net.parameters) == 4  # two weights + two biases

    def test_end_to_end_gradient(self, rng):
        net = Sequential([Dense(3, 4, rng), Tanh(), Dense(4, 2, rng)])
        x = rng.normal(size=(5, 3))
        target = rng.normal(size=(5, 2))

        def loss():
            return 0.5 * np.sum((net.forward(x, training=True) - target) ** 2)

        out = net.forward(x, training=True)
        net.backward(out - target)
        first_dense = net.layers[0]
        num = numerical_grad(loss, first_dense.weight)
        assert np.allclose(first_dense.grad_weight, num, atol=1e-4)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Sequential([])


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-4

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((3, 4))
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(4))

    def test_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])

        def loss():
            return softmax_cross_entropy(logits, labels)[0]

        _, grad = softmax_cross_entropy(logits, labels)
        assert np.allclose(grad, numerical_grad(loss, logits), atol=1e-5)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ConfigurationError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 3]))

    def test_rejects_label_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0]))


class TestBinaryCrossEntropy:
    def test_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(5, 1))
        labels = np.array([0, 1, 1, 0, 1])

        def loss():
            return binary_cross_entropy(logits, labels)[0]

        _, grad = binary_cross_entropy(logits, labels)
        assert np.allclose(grad, numerical_grad(loss, logits), atol=1e-5)

    def test_extreme_logits_stable(self):
        loss, grad = binary_cross_entropy(np.array([[500.0], [-500.0]]), np.array([1, 0]))
        assert np.isfinite(loss) and np.all(np.isfinite(grad))
        assert loss < 1e-6

    def test_rejects_nonbinary_labels(self):
        with pytest.raises(ConfigurationError):
            binary_cross_entropy(np.zeros((2, 1)), np.array([0, 2]))
