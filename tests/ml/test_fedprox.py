"""Tests for FedProx proximal local training."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ml.data import make_blobs_classification
from repro.ml.fedprox import FedProxTrainer
from repro.ml.models import MLPClassifier
from repro.ml.optim import SGD
from repro.ml.training import LocalTrainer, accuracy


def make_setup(mu=0.1, seed=0, samples=96):
    data = make_blobs_classification(samples, n_features=8, n_classes=3, seed=seed)
    model = MLPClassifier(8, [8], 3, seed=seed)
    trainer = FedProxTrainer(
        model, data, batch_size=32, mu=mu, optimizer=SGD(0.05), seed=seed
    )
    return model, data, trainer


class TestFedProxMechanics:
    def test_mu_zero_equals_fedavg_exactly(self):
        data = make_blobs_classification(96, n_features=8, n_classes=3, seed=0)
        plain_model = MLPClassifier(8, [8], 3, seed=0)
        prox_model = MLPClassifier(8, [8], 3, seed=0)
        plain = LocalTrainer(plain_model, data, 32, optimizer=SGD(0.05), seed=0)
        prox = FedProxTrainer(prox_model, data, 32, mu=0.0, optimizer=SGD(0.05), seed=0)
        plain.start_round(2)
        prox.start_round(2)
        while plain.jobs_remaining:
            plain.train_job()
            prox.train_job()
        for a, b in zip(plain_model.get_weights(), prox_model.get_weights()):
            assert np.allclose(a, b)

    def test_proximal_term_limits_drift(self):
        # With a large mu the local model stays near the anchor.
        drift = {}
        for mu in (0.0, 5.0):
            model, data, trainer = make_setup(mu=mu, seed=1)
            anchor = model.get_weights()
            trainer.set_global_weights(anchor)
            trainer.start_round(3)
            while trainer.jobs_remaining:
                trainer.train_job()
            drift[mu] = sum(
                float(np.sum((w - a) ** 2))
                for w, a in zip(model.get_weights(), anchor)
            )
        assert drift[5.0] < drift[0.0]

    def test_loss_includes_penalty(self):
        model, _, trainer = make_setup(mu=10.0, seed=2)
        trainer.set_global_weights([np.zeros_like(w) for w in model.get_weights()])
        trainer.start_round(1)
        loss = trainer.train_job()
        # weights are far from the all-zeros anchor, so the penalty is large
        assert loss > 1.0

    def test_anchor_defaults_to_round_start_weights(self):
        model, _, trainer = make_setup(mu=0.5, seed=3)
        trainer.start_round(1)
        assert trainer._anchor is not None
        for anchor, weight in zip(trainer._anchor, model.get_weights()):
            assert anchor.shape == weight.shape

    def test_set_global_weights_validates_shapes(self):
        _, _, trainer = make_setup()
        with pytest.raises(ConfigurationError):
            trainer.set_global_weights([np.zeros((2, 2))])

    def test_rejects_negative_mu(self):
        data = make_blobs_classification(64, n_features=8, n_classes=2, seed=0)
        with pytest.raises(ConfigurationError):
            FedProxTrainer(MLPClassifier(8, [4], 2), data, 32, mu=-0.1)

    def test_train_job_requires_round(self):
        _, _, trainer = make_setup()
        with pytest.raises(ConfigurationError):
            trainer.train_job()


class TestFedProxLearning:
    def test_still_learns_with_moderate_mu(self):
        model, data, trainer = make_setup(mu=0.05, seed=4, samples=300)
        for _ in range(4):
            trainer.set_global_weights(model.get_weights())
            trainer.start_round(2)
            while trainer.jobs_remaining:
                trainer.train_job()
        assert accuracy(model, data) > 0.85

    def test_composes_with_pace_control(self, fast_config):
        """FedProx gradients ride on BoFL-paced jobs unchanged."""
        from repro.core import BoFLController
        from repro.hardware import SimulatedDevice
        from tests.conftest import build_tiny_spec, build_tiny_workload

        model, data, trainer = make_setup(mu=0.1, seed=5)
        device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=0)
        controller = BoFLController(device, fast_config)
        jobs = trainer.start_round(2)
        before = [w.copy() for w in model.get_weights()]
        t_min = device.model.latency(device.space.max_configuration()) * jobs
        record = controller.run_round(jobs, t_min * 2.5, on_job=trainer.train_job)
        assert not record.missed
        assert trainer.jobs_remaining == 0
        assert any(
            not np.allclose(a, b) for a, b in zip(before, model.get_weights())
        )
