"""Tests for the multi-seed sweep harness."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.sweep import SummaryStat, sweep_campaign


class TestSummaryStat:
    def test_of_values(self):
        stat = SummaryStat.of([1.0, 2.0, 3.0])
        assert stat.mean == pytest.approx(2.0)
        assert stat.minimum == 1.0 and stat.maximum == 3.0
        assert stat.n == 3
        assert stat.std == pytest.approx(1.0)

    def test_single_value_has_zero_std(self):
        stat = SummaryStat.of([5.0])
        assert stat.std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SummaryStat.of([])


class TestSweepCampaign:
    @pytest.fixture(scope="class")
    def sweep(self):
        # short rounds with the cheap controllers dominate the runtime; the
        # BoFL runs are the cost — keep them small.
        return sweep_campaign(
            "agx", "vit", 2.0, rounds=6, seeds=(0, 1), use_cache=True
        )

    def test_aggregates_both_metrics(self, sweep):
        assert sweep.improvement.n == 2
        assert sweep.regret.n == 2
        assert -1.0 < sweep.improvement.mean < 1.0

    def test_keeps_per_seed_campaigns(self, sweep):
        assert set(sweep.campaigns) == {0, 1}
        assert set(sweep.campaigns[0]) == {"bofl", "performant", "oracle"}

    def test_seed_variation_exists(self, sweep):
        a = sweep.campaigns[0]["bofl"].training_energy
        b = sweep.campaigns[1]["bofl"].training_energy
        assert a != b  # different deadline draws and noise

    def test_no_misses_counted(self, sweep):
        assert sweep.missed_total == 0

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ConfigurationError):
            sweep_campaign("agx", "vit", 2.0, rounds=2, seeds=())

    def test_rejects_empty_generator(self):
        with pytest.raises(ConfigurationError):
            sweep_campaign("agx", "vit", 2.0, rounds=2, seeds=(s for s in ()))

    def test_accepts_a_seed_generator(self):
        # Regression: a generator used to pass the emptiness check, get
        # consumed by the campaign loop, and leave an empty seed tuple in
        # the SweepResult.
        result = sweep_campaign(
            "agx", "vit", 2.0, rounds=2, seeds=(s for s in (0, 1)),
        )
        assert result.seeds == (0, 1)
        assert result.improvement.n == 2
        assert set(result.campaigns) == {0, 1}


class TestParallelSweep:
    def test_parallel_sweep_matches_serial(self):
        from repro.sim import CampaignExecutor, clear_campaign_cache

        clear_campaign_cache()
        serial = sweep_campaign(
            "agx", "vit", 2.0, rounds=4, seeds=(0, 1), use_cache=False
        )
        clear_campaign_cache()
        executor = CampaignExecutor(workers=2)
        parallel = sweep_campaign(
            "agx", "vit", 2.0, rounds=4, seeds=(0, 1), executor=executor
        )
        assert parallel.improvement == serial.improvement
        assert parallel.regret == serial.regret
        assert parallel.missed_total == serial.missed_total
        for seed in (0, 1):
            for name in ("bofl", "performant", "oracle"):
                assert parallel.campaigns[seed][name] == serial.campaigns[seed][name]

    def test_workers_argument_builds_an_executor(self):
        result = sweep_campaign(
            "agx", "vit", 2.0, rounds=2, seeds=(0,), workers=2
        )
        assert result.improvement.n == 1
