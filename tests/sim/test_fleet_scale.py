"""Fleet-scale smokes: wall-clock and peak-RSS ceilings at 10k/100k clients.

These are the acceptance numbers for the vectorized engine — a 100k-client
async campaign must compose in well under two minutes inside 4 GiB — plus
a 1k-client byte-identity check against the legacy loop, one scale beyond
the differential matrix in ``tests/federated/test_vectorized_equivalence``.
Everything here is marked ``slow`` and excluded from tier-1 (``-m 'not
slow'`` in ``pyproject.toml``); CI's fleet-scale job and local deep runs
opt back in with ``-m slow``.
"""

import json
import resource
import sys
import time

import pytest

from repro.sim.fleet import FleetSpec, compose_fleet, fleet_summary, prepare_fleet

pytestmark = pytest.mark.slow


def peak_rss_bytes():
    """Process high-water RSS (``ru_maxrss`` is KiB on Linux, bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


GiB = 1024**3


def compose_timed(spec, *, detail="stats"):
    t0 = time.perf_counter()
    clients = prepare_fleet(spec)
    result = compose_fleet(spec, clients, detail=detail)
    return result, time.perf_counter() - t0


class TestScaleSmoke:
    def test_10k_clients_async(self):
        spec = FleetSpec(
            n_clients=10_000, rounds=5, mode="async", buffer_size=1_000
        )
        result, elapsed = compose_timed(spec)
        assert result.rounds
        assert all(r.stats is not None for r in result.rounds)
        assert result.total_energy > 0
        assert elapsed < 60.0
        assert peak_rss_bytes() < 2 * GiB

    def test_10k_clients_sync(self):
        spec = FleetSpec(n_clients=10_000, rounds=3, mode="sync")
        result, elapsed = compose_timed(spec)
        assert len(result.rounds) == 3
        assert all(r.stats.n_reports > 0 for r in result.rounds)
        assert elapsed < 60.0
        assert peak_rss_bytes() < 2 * GiB

    def test_100k_clients_async_campaign(self):
        """The headline acceptance number: 100k clients, <=120s, <4 GiB."""
        spec = FleetSpec(
            n_clients=100_000, rounds=5, mode="async", buffer_size=10_000
        )
        result, elapsed = compose_timed(spec)
        assert result.rounds
        total_reports = sum(r.stats.n_reports for r in result.rounds)
        assert total_reports >= 100_000  # every client contributed
        assert elapsed < 120.0
        assert peak_rss_bytes() < 4 * GiB
        # The summary pipeline holds at scale too.
        summary = fleet_summary(spec, result)
        assert summary["clients"] == 100_000


class TestScaleIdentity:
    def test_1k_differential_byte_identity(self):
        """legacy == vectorized on the full result dict at 1k clients —
        the differential matrix's contract, one order of magnitude up."""
        spec = FleetSpec(
            n_clients=1_000,
            rounds=4,
            mode="async",
            buffer_size=100,
            chaos_fraction=0.3,
            chaos_seed=5,
            seed=29,
        )
        clients = prepare_fleet(spec)
        vectorized = compose_fleet(spec, clients)
        legacy = compose_fleet(spec, clients, engine="legacy")
        assert json.dumps(vectorized.to_dict(), sort_keys=True) == json.dumps(
            legacy.to_dict(), sort_keys=True
        )

    def test_1k_hierarchical_differential(self):
        spec = FleetSpec(
            n_clients=1_000, rounds=3, mode="semisync", edges=32, seed=29
        )
        clients = prepare_fleet(spec)
        vectorized = compose_fleet(spec, clients)
        legacy = compose_fleet(spec, clients, engine="legacy")
        assert vectorized.to_dict() == legacy.to_dict()
