"""Tests for the persistent on-disk campaign cache."""

import json

import pytest

from repro.core.config import BoFLConfig
from repro.errors import ConfigurationError
from repro.sim import (
    PersistentCampaignCache,
    campaign_key,
    clear_campaign_cache,
    get_persistent_cache,
    install_persistent_cache,
    run_campaign,
)
from repro.sim.cache import (
    CACHE_SCHEMA_VERSION,
    STATS_SIDECAR,
    cache_key_hash,
    cache_token,
)


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_campaign_cache()
    install_persistent_cache(None)
    yield
    clear_campaign_cache()
    install_persistent_cache(None)


@pytest.fixture()
def cache(tmp_path):
    return PersistentCampaignCache(tmp_path / "campaigns")


def _key(seed=0, rounds=3, config=None):
    return campaign_key("agx", "vit", "performant", 2.0, rounds, seed, config)


def _result(seed=0, rounds=3):
    return run_campaign(
        "agx", "vit", "performant", 2.0, rounds=rounds, seed=seed, use_cache=False
    )


class TestKeyHashing:
    def test_hash_is_stable_and_hex(self):
        assert cache_key_hash(_key()) == cache_key_hash(_key())
        int(cache_key_hash(_key()), 16)

    def test_hash_distinguishes_every_key_field(self):
        base = cache_key_hash(_key())
        assert cache_key_hash(_key(seed=1)) != base
        assert cache_key_hash(_key(rounds=4)) != base
        assert cache_key_hash(_key(config=BoFLConfig(seed=0))) != base

    def test_hash_distinguishes_config_fields(self):
        a = cache_key_hash(_key(config=BoFLConfig(tau=5.0)))
        b = cache_key_hash(_key(config=BoFLConfig(tau=4.0)))
        assert a != b

    def test_token_embeds_schema_version(self):
        assert cache_token(_key())["schema"] == CACHE_SCHEMA_VERSION


class TestRoundTrip:
    def test_get_on_empty_cache_misses(self, cache):
        assert cache.get(_key()) is None
        assert cache.stats().misses == 1

    def test_put_get_round_trip_is_equal(self, cache):
        result = _result()
        cache.put(_key(), result)
        loaded = cache.get(_key())
        assert loaded == result
        assert loaded is not result

    def test_bofl_round_trip_preserves_fronts_and_mbo(self, cache):
        result = run_campaign(
            "agx", "vit", "bofl", 2.0, rounds=5, seed=0, use_cache=False
        )
        key = campaign_key("agx", "vit", "bofl", 2.0, 5, 0, None)
        cache.put(key, result)
        assert cache.get(key) == result

    def test_corrupt_entry_is_a_miss(self, cache):
        cache.put(_key(), _result())
        cache.path_for(_key()).write_text("{ not json")
        assert cache.get(_key()) is None

    def test_schema_mismatch_is_a_miss(self, cache):
        cache.put(_key(), _result())
        path = cache.path_for(_key())
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(_key()) is None

    def test_key_token_mismatch_is_a_miss(self, cache):
        cache.put(_key(), _result())
        path = cache.path_for(_key())
        payload = json.loads(path.read_text())
        payload["key"]["seed"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(_key()) is None


class TestEvictionAndMaintenance:
    def test_max_entries_evicts_oldest(self, tmp_path):
        cache = PersistentCampaignCache(tmp_path, max_entries=2)
        import os

        for seed in range(3):
            path = cache.put(_key(seed=seed), _result(seed=seed))
            # Strictly order mtimes (filesystem timestamps can tie).
            os.utime(path, (1000 + seed, 1000 + seed))
            cache._evict()
        assert len(cache) == 2
        assert cache.get(_key(seed=0)) is None
        assert cache.get(_key(seed=2)) is not None

    def test_max_bytes_bounds_total_size(self, tmp_path):
        probe = PersistentCampaignCache(tmp_path / "probe")
        entry_bytes = probe.put(_key(), _result()).stat().st_size
        cache = PersistentCampaignCache(
            tmp_path / "bounded", max_bytes=int(entry_bytes * 1.5)
        )
        cache.put(_key(seed=0), _result(seed=0))
        cache.put(_key(seed=1), _result(seed=1))
        assert len(cache) == 1

    def test_clear_removes_everything(self, cache):
        cache.put(_key(seed=0), _result(seed=0))
        cache.put(_key(seed=1), _result(seed=1))
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_stats_counts_entries_and_traffic(self, cache):
        cache.put(_key(), _result())
        cache.get(_key())
        cache.get(_key(seed=9))
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.total_bytes > 0
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert "entries" in stats.render()

    def test_validates_bounds(self, tmp_path):
        with pytest.raises(ConfigurationError):
            PersistentCampaignCache(tmp_path, max_entries=0)
        with pytest.raises(ConfigurationError):
            PersistentCampaignCache(tmp_path, max_bytes=0)


class TestRunnerIntegration:
    def test_install_get_uninstall(self, cache):
        install_persistent_cache(cache)
        assert get_persistent_cache() is cache
        install_persistent_cache(None)
        assert get_persistent_cache() is None

    def test_run_campaign_writes_through_and_reads_back(self, cache):
        install_persistent_cache(cache)
        first = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        assert cache.stats().writes == 1
        clear_campaign_cache()  # kill the in-memory layer
        second = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        assert second == first
        assert cache.stats().hits == 1

    def test_disk_hit_repopulates_memory_layer(self, cache):
        install_persistent_cache(cache)
        run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        clear_campaign_cache()
        run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        hits_after_disk = cache.stats().hits
        run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        assert cache.stats().hits == hits_after_disk  # served from memory

    def test_use_cache_false_never_touches_disk(self, cache):
        install_persistent_cache(cache)
        run_campaign(
            "agx", "vit", "performant", 2.0, rounds=3, seed=0, use_cache=False
        )
        stats = cache.stats()
        assert (stats.writes, stats.hits, stats.misses) == (0, 0, 0)


class TestIncrementalStatsPersistence:
    """Lifetime counters are persisted per operation, not on shutdown.

    A campaign killed mid-flight never runs any shutdown hook, so the
    sidecar must already hold every hit/miss/write/eviction the dead
    session performed; `repro cache stats` then reports them as the
    ``lifetime`` rows.
    """

    def test_totals_survive_an_interrupted_session(self, cache):
        cache.put(_key(seed=0), _result(seed=0))
        cache.get(_key(seed=0))
        cache.get(_key(seed=9))
        # Simulate the interruption: drop the instance without any
        # cleanup and reopen the directory cold.
        reopened = PersistentCampaignCache(cache.directory)
        stats = reopened.stats()
        assert (stats.writes, stats.hits, stats.misses) == (0, 0, 0)
        assert (stats.total_writes, stats.total_hits, stats.total_misses) == (1, 1, 1)

    def test_totals_accumulate_across_sessions(self, cache):
        cache.put(_key(seed=0), _result(seed=0))
        second = PersistentCampaignCache(cache.directory)
        second.get(_key(seed=0))
        second.get(_key(seed=0))
        stats = PersistentCampaignCache(cache.directory).stats()
        assert stats.total_writes == 1
        assert stats.total_hits == 2

    def test_evictions_are_persisted(self, tmp_path):
        cache = PersistentCampaignCache(tmp_path / "campaigns", max_entries=1)
        cache.put(_key(seed=0), _result(seed=0))
        cache.put(_key(seed=1), _result(seed=1))
        stats = PersistentCampaignCache(cache.directory).stats()
        assert stats.total_evictions == 1
        assert stats.total_writes == 2

    def test_sidecar_never_reads_as_a_cache_entry(self, cache):
        cache.put(_key(seed=0), _result(seed=0))
        cache.get(_key(seed=0))
        assert len(cache) == 1  # the sidecar is not in the entry glob
        assert (cache.directory / STATS_SIDECAR).is_file()

    def test_corrupt_sidecar_reads_as_zero(self, cache):
        cache.put(_key(seed=0), _result(seed=0))
        (cache.directory / STATS_SIDECAR).write_text("{not json")
        stats = cache.stats()
        assert stats.total_writes == 0
        # The next operation restarts accumulation from zero.
        cache.get(_key(seed=0))
        assert cache.stats().total_hits == 1

    def test_clear_resets_lifetime_counters(self, cache):
        cache.put(_key(seed=0), _result(seed=0))
        cache.get(_key(seed=0))
        cache.clear()
        stats = PersistentCampaignCache(cache.directory).stats()
        assert (stats.total_writes, stats.total_hits, stats.total_misses) == (0, 0, 0)

    def test_render_reports_lifetime_rows(self, cache):
        cache.put(_key(seed=0), _result(seed=0))
        rendered = PersistentCampaignCache(cache.directory).stats().render()
        assert "lifetime writes : 1" in rendered
        assert "session writes  : 0" in rendered
