"""Tests for the parallel campaign executor.

The load-bearing property is paired determinism: a grid executed over
worker processes must be byte-identical to the serial path, because every
work unit derives its scenario seed from (device, task, ratio, seed)
exactly as ``run_campaign`` does.
"""

import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    CampaignExecutor,
    CampaignSpec,
    clear_campaign_cache,
    execute_campaigns,
    expand_grid,
    resolve_workers,
    run_campaign,
)
from repro.sim import runner as runner_module


@pytest.fixture(autouse=True)
def isolated_cache():
    clear_campaign_cache()
    yield
    clear_campaign_cache()


class TestSpecAndGrid:
    def test_spec_key_matches_runner_key(self):
        spec = CampaignSpec("agx", "vit", "performant", 2.0, rounds=3, seed=1)
        assert spec.key() == runner_module.campaign_key(
            "agx", "vit", "performant", 2.0, 3, 1, None
        )

    def test_spec_run_is_plain_run_campaign(self):
        spec = CampaignSpec("agx", "vit", "performant", 2.0, rounds=2, seed=0)
        assert spec.run(use_cache=False) == run_campaign(
            "agx", "vit", "performant", 2.0, rounds=2, seed=0, use_cache=False
        )

    def test_expand_grid_is_full_cross_product(self):
        specs = expand_grid(
            devices=("agx", "tx2"),
            tasks=("vit",),
            controllers=("performant", "oracle"),
            ratios=(2.0, 4.0),
            seeds=(0, 1, 2),
            rounds=5,
        )
        assert len(specs) == 2 * 1 * 2 * 2 * 3
        assert len({s.key() for s in specs}) == len(specs)

    def test_expand_grid_attaches_config_only_to_bofl(self, fast_config):
        specs = expand_grid(
            tasks=("vit",), controllers=("bofl", "performant"),
            rounds=5, bofl_config=fast_config,
        )
        by_controller = {s.controller: s for s in specs}
        assert by_controller["bofl"].bofl_config == fast_config
        assert by_controller["performant"].bofl_config is None

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ConfigurationError):
            resolve_workers(0)


SPECS = [
    CampaignSpec("agx", "vit", controller, 2.0, rounds=3, seed=seed)
    for seed in (0, 1)
    for controller in ("performant", "oracle")
]


class TestExecution:
    def test_serial_and_parallel_results_identical(self):
        serial = CampaignExecutor(workers=1).run(SPECS, use_cache=False)
        clear_campaign_cache()
        parallel = CampaignExecutor(workers=2).run(SPECS, use_cache=False)
        assert serial.results == parallel.results

    def test_parallel_matches_direct_run_campaign(self):
        report = CampaignExecutor(workers=2).run(SPECS[:2])
        for spec, result in zip(SPECS[:2], report.results):
            clear_campaign_cache()
            assert result == spec.run(use_cache=False)

    def test_results_preserve_submission_order(self):
        report = CampaignExecutor(workers=2).run(SPECS)
        for spec, result in zip(SPECS, report.results):
            assert (result.controller, result.device) == (spec.controller, spec.device)

    def test_duplicate_specs_share_one_computation(self):
        spec = SPECS[0]
        report = CampaignExecutor(workers=2).run([spec, spec, spec])
        assert report.results[0] == report.results[1] == report.results[2]
        computed = [t for t in report.timings if t.source == "computed"]
        assert len(computed) == 3  # all three reported, one execution
        assert len({id(r) for r in report.results}) >= 1

    def test_workers_one_primes_the_memo(self):
        CampaignExecutor(workers=1).run([SPECS[0]])
        assert SPECS[0].key() in runner_module._CAMPAIGN_CACHE

    def test_parallel_run_primes_the_memo(self):
        CampaignExecutor(workers=2).run([SPECS[0]])
        assert SPECS[0].key() in runner_module._CAMPAIGN_CACHE

    def test_second_run_is_memory_served(self):
        executor = CampaignExecutor(workers=2)
        first = executor.run(SPECS)
        second = executor.run(SPECS)
        assert second.results == first.results
        assert all(t.source == "memory" for t in second.timings)

    def test_progress_callback_streams_every_cell(self):
        events = []
        executor = CampaignExecutor(
            workers=2, progress=lambda done, total, t: events.append((done, total))
        )
        executor.run(SPECS)
        assert [e[0] for e in events] == list(range(1, len(SPECS) + 1))
        assert all(total == len(SPECS) for _, total in events)

    def test_report_accounting(self):
        executor = CampaignExecutor(workers=1)
        report = executor.run(SPECS)
        assert report.computed == len(SPECS)
        assert report.from_cache == 0
        again = executor.run(SPECS)
        assert again.from_cache == len(SPECS)
        assert "campaigns" in report.render()

    def test_execute_campaigns_helper(self):
        report = execute_campaigns(SPECS[:2], workers=1)
        assert len(report.results) == 2

    def test_executor_results_do_not_alias_the_memo(self):
        executor = CampaignExecutor(workers=1)
        first = executor.run([SPECS[0]]).results[0]
        first.records.clear()  # caller mutates its copy
        second = executor.run([SPECS[0]]).results[0]
        assert second.rounds == 3
