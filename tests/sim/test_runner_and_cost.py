"""Unit tests for the campaign runner and the MBO cost model."""

import pytest

from repro.core.config import BoFLConfig
from repro.errors import ConfigurationError
from repro.hardware.devices import jetson_agx, jetson_tx2
from repro.sim import MBOCostModel, clear_campaign_cache, make_controller, run_campaign
from repro.sim.runner import CONTROLLER_NAMES
from repro.hardware import SimulatedDevice
from repro.workloads import vit


class TestMBOCostModel:
    def test_grows_with_observations_and_batch(self):
        model = MBOCostModel(jetson_agx())
        small = model(10, 2)
        big = model(80, 10)
        assert big[0] > small[0]
        assert big[1] > small[1]

    def test_paper_band_on_agx(self):
        model = MBOCostModel(jetson_agx())
        latency, energy = model(40, 10)
        assert 4.0 < latency < 10.0  # paper: 6-9 s
        assert 40.0 < energy < 80.0  # paper: 50-70 J

    def test_tx2_slower_than_agx(self):
        n, k = 40, 10
        agx_latency = MBOCostModel(jetson_agx())(n, k)[0]
        tx2_latency = MBOCostModel(jetson_tx2())(n, k)[0]
        assert tx2_latency > agx_latency

    def test_rejects_negative_counts(self):
        model = MBOCostModel(jetson_agx())
        with pytest.raises(ConfigurationError):
            model(-1, 2)

    def test_validates_coefficients(self):
        with pytest.raises(ConfigurationError):
            MBOCostModel(jetson_agx(), base_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            MBOCostModel(jetson_agx(), power_watts_at_unit_speed=0.0)


class TestMakeController:
    def test_all_names_constructible(self):
        for name in CONTROLLER_NAMES:
            device = SimulatedDevice(jetson_agx(), vit(), seed=0)
            controller = make_controller(name, device)
            assert controller.name in (name, "bofl")  # random_search subclasses bofl

    def test_unknown_name(self):
        device = SimulatedDevice(jetson_agx(), vit(), seed=0)
        with pytest.raises(ConfigurationError):
            make_controller("dqn", device)


class TestRunCampaign:
    """Uses short Performant/Oracle campaigns (fast, no GP fits)."""

    def test_result_metadata(self):
        result = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        assert result.controller == "performant"
        assert result.device == "agx"
        assert result.task == "vit"
        assert result.rounds == 3

    def test_deadlines_paired_across_controllers(self):
        performant = run_campaign("agx", "vit", "performant", 2.0, rounds=4, seed=0)
        oracle = run_campaign("agx", "vit", "oracle", 2.0, rounds=4, seed=0)
        assert performant.deadline_series() == oracle.deadline_series()

    def test_cache_returns_equal_private_copies(self):
        a = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        b = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        # Equal results, but never the same object: each caller gets a
        # defensive copy so mutations cannot corrupt the cache.
        assert a == b
        assert a is not b
        clear_campaign_cache()
        c = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        assert c == a

    def test_mutating_a_result_does_not_corrupt_the_cache(self):
        # Regression: the cache used to hand out its internal object by
        # reference, so a caller clearing records (as _annotate mutates
        # fresh results) poisoned every later lookup.
        first = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        first.records.clear()
        first.final_front = [(0.0, 0.0)]
        second = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        assert second.rounds == 3
        assert second.final_front != [(0.0, 0.0)]

    def test_fresh_result_mutation_does_not_corrupt_the_cache(self):
        first = run_campaign("agx", "vit", "oracle", 2.0, rounds=3, seed=5)
        record = first.records.pop()  # mutate the freshly computed object
        second = run_campaign("agx", "vit", "oracle", 2.0, rounds=3, seed=5)
        assert second.rounds == 3
        assert second.records[-1] == record

    def test_cache_bypass(self):
        a = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        b = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0, use_cache=False)
        assert a is not b
        assert a.energy_series() == b.energy_series()

    def test_reproducible_across_calls(self):
        a = run_campaign("agx", "vit", "oracle", 2.0, rounds=3, seed=1, use_cache=False)
        b = run_campaign("agx", "vit", "oracle", 2.0, rounds=3, seed=1, use_cache=False)
        assert a.energy_series() == b.energy_series()

    def test_unknown_task(self):
        with pytest.raises(ConfigurationError):
            run_campaign("agx", "alexnet", "performant", 2.0, rounds=2)

    def test_oracle_final_front_attached(self):
        result = run_campaign("agx", "vit", "oracle", 2.0, rounds=2, seed=0)
        assert result.final_front is not None
        assert len(result.final_front) > 3

    def test_bofl_config_participates_in_cache_key(self):
        base = run_campaign("agx", "vit", "performant", 2.0, rounds=2, seed=0)
        alt = run_campaign(
            "agx", "vit", "performant", 2.0, rounds=2, seed=0,
            bofl_config=BoFLConfig(seed=0),
        )
        assert base is not alt
