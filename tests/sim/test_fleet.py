"""Unit tests for the fleet orchestration layer (repro.sim.fleet)."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.obs import runtime as obs
from repro.sim.fleet import (
    FLEET_SELECTORS,
    FleetSpec,
    build_fleet_clients,
    campaign_spec_for,
    compose_fleet,
    fleet_report_from_trace,
    fleet_summary,
    prepare_fleet,
    render_fleet_summary,
    run_fleet,
)

#: A fleet cheap enough for unit tests: performant-only pacing, few
#: archetypes, so trace gathering is a couple of fast campaigns.
TINY = dict(
    n_clients=8,
    rounds=2,
    controllers=("performant",),
    archetypes=2,
    deadline_ratio=2.5,
)


class TestFleetSpecValidation:
    def test_defaults_are_valid(self):
        spec = FleetSpec()
        assert spec.mode == "sync"
        assert spec.selector in FLEET_SELECTORS

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_clients=0),
            dict(rounds=0),
            dict(mode="firehose"),
            dict(deadline_ratio=0.0),
            dict(devices=()),
            dict(tasks=("transformer-xxl",)),
            dict(controllers=()),
            dict(archetypes=0),
            dict(participants=0),
            dict(over_selection=0.9),
            dict(buffer_size=0),
            dict(staleness_exponent=-0.1),
            dict(max_staleness=-1),
            dict(selector="psychic"),
            dict(chaos_fraction=1.5),
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ConfigurationError):
            FleetSpec(**kwargs)

    def test_effective_participants_caps_at_fleet_size(self):
        assert FleetSpec(n_clients=10).effective_participants() == 10
        assert FleetSpec(n_clients=10, participants=4).effective_participants() == 4
        assert FleetSpec(n_clients=10, participants=40).effective_participants() == 10


class TestBuildFleetClients:
    def test_population_shape(self):
        spec = FleetSpec(n_clients=12, archetypes=4)
        clients = build_fleet_clients(spec)
        assert len(clients) == 12
        assert [c.client_id for c in clients[:2]] == ["client-0000", "client-0001"]
        # Round-robin attribute cycles: device alternates fastest.
        assert [c.device for c in clients[:4]] == ["agx", "tx2", "agx", "tx2"]
        assert all(c.task in spec.tasks for c in clients)
        assert all(c.controller in spec.controllers for c in clients)
        assert all(200 <= c.n_samples <= 1000 for c in clients)

    def test_archetype_pooling_shares_trace_seeds(self):
        spec = FleetSpec(n_clients=9, archetypes=3, seed=7)
        clients = build_fleet_clients(spec)
        assert {c.trace_seed for c in clients} == {7, 8, 9}
        assert clients[0].trace_seed == clients[3].trace_seed

    def test_no_pooling_when_archetypes_is_none(self):
        clients = build_fleet_clients(FleetSpec(n_clients=6, archetypes=None))
        assert len({c.trace_seed for c in clients}) == 6

    def test_population_is_a_pure_function_of_the_spec(self):
        spec = FleetSpec(n_clients=20, chaos_fraction=0.3)
        assert build_fleet_clients(spec) == build_fleet_clients(spec)

    def test_upload_seeds_are_per_client(self):
        clients = build_fleet_clients(FleetSpec(n_clients=10))
        assert len({c.upload_seed for c in clients}) == 10


class TestClientChaos:
    def test_zero_fraction_means_no_chaos(self):
        clients = build_fleet_clients(FleetSpec(n_clients=10, chaos_fraction=0.0))
        assert all(c.fault_schedule is None for c in clients)
        assert all(c.stall_windows == () for c in clients)

    def test_full_fraction_makes_every_client_chaotic(self):
        clients = build_fleet_clients(FleetSpec(n_clients=10, chaos_fraction=1.0))
        assert all(
            c.fault_schedule is not None or c.stall_windows for c in clients
        )

    def test_fault_kinds_are_split_by_layer(self):
        clients = build_fleet_clients(FleetSpec(n_clients=30, chaos_fraction=1.0))
        for client in clients:
            if client.fault_schedule is not None:
                assert all(
                    f.kind == "client_dropout" for f in client.fault_schedule.faults
                )
            assert all(f.kind == "transport_stall" for f in client.stall_windows)

    def test_chaotic_archetype_mates_share_campaign_windows(self):
        # Windows hash from the archetype, not the client id, so pooled
        # trace gathering survives chaos (at most 2x unique campaigns).
        spec = FleetSpec(n_clients=24, archetypes=2, chaos_fraction=1.0)
        clients = build_fleet_clients(spec)
        mates = [c for c in clients if c.index % 12 == 0]  # same archetype cycle
        keys = {
            campaign_spec_for(c, spec).key()
            for c in clients
            if c.trace_seed == clients[0].trace_seed
            and (c.device, c.task, c.controller)
            == (clients[0].device, clients[0].task, clients[0].controller)
        }
        assert len(keys) == 1
        assert mates  # the slice above actually selected something


class TestCampaignSpecFor:
    def test_maps_the_client_onto_a_campaign(self):
        spec = FleetSpec(**TINY)
        client = build_fleet_clients(spec)[0]
        campaign = campaign_spec_for(client, spec)
        assert campaign.device == client.device
        assert campaign.task == client.task
        assert campaign.controller == "performant"
        assert campaign.rounds == spec.rounds
        assert campaign.seed == client.trace_seed
        assert campaign.deadline_ratio == spec.deadline_ratio


class TestPrepareAndCompose:
    @pytest.fixture(scope="class")
    def prepared(self):
        spec = FleetSpec(**TINY)
        return spec, prepare_fleet(spec, workers=1, use_cache=False)

    def test_prepare_fills_every_trace(self, prepared):
        spec, clients = prepared
        assert all(len(c.records) == spec.rounds for c in clients)

    def test_archetype_mates_share_trace_content_not_lists(self, prepared):
        _, clients = prepared
        a, b = clients[0], clients[6]  # same (device, task, archetype) cycle
        assert (a.device, a.task, a.trace_seed) == (b.device, b.task, b.trace_seed)
        assert a.records == b.records
        # Fresh list objects per client: the engine trims its own copy.
        assert a.records is not b.records

    def test_compose_is_repeatable_over_one_preparation(self, prepared):
        spec, clients = prepared
        first = compose_fleet(spec, clients)
        second = compose_fleet(spec, clients)
        assert first.to_dict() == second.to_dict()

    def test_compose_does_not_consume_the_prepared_traces(self, prepared):
        spec, clients = prepared
        lengths = [len(c.records) for c in clients]
        compose_fleet(dataclasses.replace(spec, mode="async"), clients)
        assert [len(c.records) for c in clients] == lengths

    def test_modes_share_energy_accounting_at_full_participation(self, prepared):
        spec, clients = prepared
        sync = compose_fleet(spec, clients)
        buffered = compose_fleet(
            dataclasses.replace(spec, mode="async", buffer_size=4), clients
        )
        assert buffered.total_energy == pytest.approx(sync.total_energy)

    def test_semisync_respects_over_selection(self, prepared):
        spec, clients = prepared
        semi = dataclasses.replace(
            spec, mode="semisync", participants=4, over_selection=1.5
        )
        result = compose_fleet(semi, clients)
        for rnd in result.rounds:
            assert len(rnd.participants) == 6  # ceil(4 x 1.5)

    def test_energy_selector_composes(self, prepared):
        spec, clients = prepared
        result = compose_fleet(
            dataclasses.replace(spec, selector="energy", participants=3), clients
        )
        for rnd in result.rounds:
            assert len(rnd.participants) == 3


class TestRunFleetDeterminism:
    def test_serial_and_sharded_runs_are_identical(self):
        spec = FleetSpec(**TINY)
        serial = run_fleet(spec, workers=1, use_cache=False)
        sharded = run_fleet(spec, workers=2, use_cache=False)
        assert serial.to_dict() == sharded.to_dict()


class TestFleetSummary:
    def test_summary_and_rendering(self):
        spec = FleetSpec(**TINY)
        result = run_fleet(spec, workers=1, use_cache=False)
        summary = fleet_summary(spec, result)
        assert summary["mode"] == "sync"
        assert summary["clients"] == spec.n_clients
        assert summary["rounds"] == spec.rounds
        assert summary["total_energy"] > 0
        rendered = render_fleet_summary(summary)
        for key in summary:
            assert key in rendered


class TestFleetReportFromTrace:
    def test_round_trips_a_recorded_composition(self, tmp_path):
        spec = FleetSpec(**TINY)
        clients = prepare_fleet(spec, workers=1, use_cache=False)
        with obs.session(deterministic=True) as session:
            compose_fleet(spec, clients)
        trace = session.log.dump_jsonl(tmp_path / "fleet.jsonl")
        report = fleet_report_from_trace(trace)
        assert "fleet.start" in report
        assert "fleet.round" in report
        assert "mode=sync" in report
        assert "aggregations" in report

    def test_rejects_traces_without_fleet_events(self, tmp_path):
        with obs.session(deterministic=True) as session:
            obs.emit("campaign.start", device="agx")
        trace = session.log.dump_jsonl(tmp_path / "other.jsonl")
        with pytest.raises(ConfigurationError, match="no fleet events"):
            fleet_report_from_trace(trace)
