"""Unit tests for BoFL's building blocks: config, observations, guardian,
measurement policy, exploitation planner, stopping rule, phases."""

import pytest

from repro.core.config import BoFLConfig
from repro.core.exploitation import ExploitationPlanner
from repro.core.guardian import DeadlineGuardian
from repro.core.observations import ObservationStore
from repro.core.phases import Phase, PhaseTransition
from repro.core.stopping import StoppingCondition
from repro.core.workload_assignment import MeasurementPolicy
from repro.errors import ConfigurationError, InfeasibleError
from repro.types import DvfsConfiguration, PerformanceSample, RoundBudget


class TestBoFLConfig:
    def test_paper_defaults(self):
        config = BoFLConfig()
        assert config.tau == 5.0
        assert config.initial_sample_fraction == 0.01
        assert config.min_explored_fraction == 0.03
        assert config.hv_improvement_threshold == 0.01
        assert config.max_batch_size == 10

    def test_initial_samples_scales_with_space(self):
        config = BoFLConfig()
        assert config.initial_samples(2100) == 21  # 1% of the AGX space
        assert config.initial_samples(936) == 9
        assert config.initial_samples(10) >= 2  # floor

    def test_min_explored(self):
        assert BoFLConfig().min_explored(2100) == 63  # 3%

    def test_validation(self):
        with pytest.raises(Exception):
            BoFLConfig(tau=0.0)
        with pytest.raises(Exception):
            BoFLConfig(max_batch_size=0)
        with pytest.raises(Exception):
            BoFLConfig(initial_sample_fraction=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            BoFLConfig().tau = 3.0  # type: ignore[misc]


def sample(cpu=1.0, latency=0.1, energy=2.0, jobs=1):
    return PerformanceSample(
        DvfsConfiguration(cpu, 1.0, 1.0), latency, energy, jobs, latency * jobs
    )


class TestObservationStore:
    def test_add_and_get(self):
        store = ObservationStore()
        merged = store.add(sample())
        assert len(store) == 1
        assert store.get(merged.config) is merged

    def test_duplicate_configs_merge(self):
        store = ObservationStore()
        store.add(sample(latency=0.1, jobs=1))
        merged = store.add(sample(latency=0.3, jobs=1))
        assert len(store) == 1
        assert merged.latency == pytest.approx(0.2)
        assert merged.jobs_measured == 2

    def test_get_missing_raises(self):
        with pytest.raises(ConfigurationError):
            ObservationStore().get(DvfsConfiguration(1, 1, 1))
        assert ObservationStore().maybe_get(DvfsConfiguration(1, 1, 1)) is None

    def test_pareto_set(self):
        store = ObservationStore()
        store.add(sample(cpu=1.0, latency=0.1, energy=3.0))
        store.add(sample(cpu=2.0, latency=0.3, energy=1.0))
        store.add(sample(cpu=3.0, latency=0.3, energy=3.5))  # dominated
        configs, values = store.pareto_set()
        assert len(configs) == 2
        assert values.shape == (2, 2)

    def test_fastest_and_worst(self):
        store = ObservationStore()
        store.add(sample(cpu=1.0, latency=0.1, energy=3.0))
        store.add(sample(cpu=2.0, latency=0.5, energy=1.0))
        assert store.fastest().latency == pytest.approx(0.1)
        assert store.worst_latency() == pytest.approx(0.5)
        assert store.worst_point() == (pytest.approx(0.5), pytest.approx(3.0))

    def test_empty_store_raises(self):
        store = ObservationStore()
        with pytest.raises(ConfigurationError):
            store.fastest()
        with pytest.raises(ConfigurationError):
            store.worst_point()


class TestDeadlineGuardian:
    def test_eqn2_exact_boundary(self):
        guardian = DeadlineGuardian(tau=5.0, safety_pad=0.0)
        guardian.update_t_xmax(0.2)
        # reserve = tau + worst latency (0.2). 10 jobs remaining at 0.2 = 2.0s.
        budget = RoundBudget(total_jobs=10, deadline=7.2 + 1e-6)
        assert guardian.allows_exploration(budget)
        tight = RoundBudget(total_jobs=10, deadline=7.2 - 1e-3)
        assert not guardian.allows_exploration(tight)

    def test_safety_pad_tightens_the_check(self):
        guardian = DeadlineGuardian(tau=5.0, safety_pad=0.05)
        guardian.update_t_xmax(0.2)
        marginal = RoundBudget(total_jobs=10, deadline=7.25)
        assert not guardian.allows_exploration(marginal)

    def test_xmax_job_observations_refine_estimate(self):
        guardian = DeadlineGuardian(tau=1.0)
        guardian.update_t_xmax(0.30)  # noisy window estimate
        for _ in range(20):
            guardian.observe_xmax_job(0.20)  # accurate per-job timings
        assert guardian.t_xmax < 0.21

    def test_accounts_progress(self):
        guardian = DeadlineGuardian(tau=1.0, safety_pad=0.0)
        guardian.update_t_xmax(0.1)
        budget = RoundBudget(total_jobs=100, deadline=12.0)
        assert guardian.allows_exploration(budget)
        budget.jobs_done = 90
        budget.elapsed = 11.5
        assert not guardian.allows_exploration(budget)

    def test_worst_latency_grows_reserve(self):
        guardian = DeadlineGuardian(tau=2.0)
        guardian.update_t_xmax(0.1)
        base_reserve = guardian.reserve
        guardian.observe_job_latency(1.5)
        assert guardian.reserve == pytest.approx(base_reserve - 0.1 + 1.5)

    def test_disabled_always_allows(self):
        guardian = DeadlineGuardian(tau=5.0, enabled=False)
        guardian.update_t_xmax(1.0)
        hopeless = RoundBudget(total_jobs=100, deadline=1.0)
        assert guardian.allows_exploration(hopeless)

    def test_allows_first_measurement_without_anchor(self):
        guardian = DeadlineGuardian(tau=5.0)
        assert guardian.allows_exploration(RoundBudget(total_jobs=5, deadline=1.0))

    def test_trigger_count(self):
        guardian = DeadlineGuardian(tau=5.0)
        guardian.update_t_xmax(0.5)
        guardian.allows_exploration(RoundBudget(total_jobs=100, deadline=1.0))
        assert guardian.trigger_count == 1


class TestMeasurementPolicy:
    def test_measures_for_at_least_tau(self, quiet_device):
        policy = MeasurementPolicy(tau=0.5)
        budget = RoundBudget(total_jobs=100, deadline=100.0)
        config = quiet_device.space.max_configuration()
        measured, results = policy.measure(quiet_device, config, budget)
        assert measured.duration >= 0.5
        assert len(results) == budget.jobs_done
        assert measured.jobs_measured == len(results)

    def test_stops_when_budget_exhausted(self, quiet_device):
        policy = MeasurementPolicy(tau=100.0)
        budget = RoundBudget(total_jobs=3, deadline=100.0)
        _, results = policy.measure(
            quiet_device, quiet_device.space.max_configuration(), budget
        )
        assert len(results) == 3
        assert budget.finished

    def test_fires_job_callback(self, quiet_device):
        policy = MeasurementPolicy(tau=0.2)
        budget = RoundBudget(total_jobs=50, deadline=100.0)
        calls = []
        policy.measure(
            quiet_device,
            quiet_device.space.max_configuration(),
            budget,
            on_job=lambda: calls.append(1),
        )
        assert len(calls) == budget.jobs_done


class TestExploitationPlanner:
    def _store(self):
        store = ObservationStore()
        store.add(sample(cpu=2.0, latency=0.2, energy=5.0))  # fast expensive
        store.add(sample(cpu=1.0, latency=0.5, energy=1.0))  # slow cheap
        return store

    def test_mixture_schedule(self):
        planner = ExploitationPlanner(safety_margin=0.0)
        schedule = planner.plan(self._store(), jobs=10, time_remaining=3.5)
        assert schedule.total_jobs == 10
        assert schedule.expected_latency <= 3.5 + 1e-9
        # fastest-first execution order
        latencies = [0.2 if e.config.cpu == 2.0 else 0.5 for e in schedule]
        assert latencies == sorted(latencies)

    def test_loose_deadline_all_cheap(self):
        planner = ExploitationPlanner(safety_margin=0.0)
        schedule = planner.plan(self._store(), jobs=10, time_remaining=50.0)
        assert len(schedule) == 1
        assert schedule.entries[0].config.cpu == 1.0

    def test_single_config_mode(self):
        planner = ExploitationPlanner(safety_margin=0.0, exact=False)
        schedule = planner.plan(self._store(), jobs=10, time_remaining=3.5)
        assert len(schedule) == 1  # greedy uses one configuration

    def test_infeasible_raises(self):
        planner = ExploitationPlanner(safety_margin=0.0)
        with pytest.raises(InfeasibleError):
            planner.plan(self._store(), jobs=10, time_remaining=1.0)

    def test_empty_store_raises(self):
        with pytest.raises(InfeasibleError):
            ExploitationPlanner().plan(ObservationStore(), 5, 10.0)

    def test_safety_margin_tightens(self):
        relaxed = ExploitationPlanner(safety_margin=0.0).plan(
            self._store(), jobs=10, time_remaining=3.5
        )
        guarded = ExploitationPlanner(safety_margin=0.1).plan(
            self._store(), jobs=10, time_remaining=3.5
        )
        assert guarded.expected_latency <= relaxed.expected_latency + 1e-12
        assert guarded.expected_energy >= relaxed.expected_energy - 1e-12


class TestStoppingCondition:
    def test_requires_coverage_first(self):
        stop = StoppingCondition(min_explored=10, hv_improvement_threshold=0.01)
        stop.record_hypervolume(1.0)
        stop.record_hypervolume(1.0)
        assert not stop.should_stop(n_explored=5)
        assert stop.should_stop(n_explored=10)

    def test_requires_flat_hypervolume(self):
        stop = StoppingCondition(min_explored=5, hv_improvement_threshold=0.01)
        stop.record_hypervolume(1.0)
        stop.record_hypervolume(1.5)  # +50%
        assert not stop.should_stop(n_explored=100)
        stop.record_hypervolume(1.5005)  # +0.03%
        assert stop.should_stop(n_explored=100)

    def test_single_record_never_stops(self):
        stop = StoppingCondition(min_explored=0, hv_improvement_threshold=0.01)
        stop.record_hypervolume(1.0)
        assert not stop.should_stop(n_explored=100)

    def test_rejects_decreasing_hypervolume(self):
        stop = StoppingCondition(min_explored=0, hv_improvement_threshold=0.01)
        stop.record_hypervolume(1.0)
        with pytest.raises(ValueError):
            stop.record_hypervolume(0.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            StoppingCondition(0, 0.01).record_hypervolume(-1.0)


class TestPhases:
    def test_order(self):
        assert Phase.RANDOM_EXPLORATION.order == 1
        assert Phase.PARETO_CONSTRUCTION.order == 2
        assert Phase.EXPLOITATION.order == 3

    def test_transition_must_advance_one_step(self):
        PhaseTransition(0, Phase.RANDOM_EXPLORATION, Phase.PARETO_CONSTRUCTION)
        with pytest.raises(ValueError):
            PhaseTransition(0, Phase.RANDOM_EXPLORATION, Phase.EXPLOITATION)
        with pytest.raises(ValueError):
            PhaseTransition(0, Phase.PARETO_CONSTRUCTION, Phase.RANDOM_EXPLORATION)

    def test_reexploration_restart_is_the_only_backward_move(self):
        restart = PhaseTransition(0, Phase.EXPLOITATION, Phase.RANDOM_EXPLORATION)
        assert restart.is_restart
