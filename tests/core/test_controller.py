"""Behavioural tests for the BoFL controller state machine.

All run on the 90-configuration tiny board so full campaigns take well
under a second.
"""

import pytest

from repro.core import BoFLController, Phase
from repro.errors import ConfigurationError
from repro.federated.deadlines import UniformDeadlines
from repro.hardware import SimulatedDevice
from tests.conftest import build_tiny_spec, build_tiny_workload


JOBS = 60  # jobs per round on the tiny board


def fresh_controller(fast_config, seed=0, mbo_cost=None):
    device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=seed)
    return BoFLController(device, fast_config, mbo_cost=mbo_cost)


def t_min_of(controller):
    x_max = controller.device.space.max_configuration()
    return controller.device.model.latency(x_max) * JOBS


def run_campaign(controller, rounds, ratio=2.5, seed=7):
    deadlines = UniformDeadlines(ratio).generate(t_min_of(controller), rounds, seed)
    return [controller.run_round(JOBS, d) for d in deadlines]


class TestPhaseProgression:
    def test_starts_in_random_exploration(self, fast_config):
        controller = fresh_controller(fast_config)
        assert controller.phase is Phase.RANDOM_EXPLORATION

    def test_phases_advance_in_order(self, fast_config):
        controller = fresh_controller(fast_config)
        run_campaign(controller, 20)
        assert controller.phase is Phase.EXPLOITATION
        kinds = [t.to_phase for t in controller.transitions]
        assert kinds == [Phase.PARETO_CONSTRUCTION, Phase.EXPLOITATION]

    def test_record_phases_are_contiguous(self, fast_config):
        controller = fresh_controller(fast_config)
        records = run_campaign(controller, 20)
        order = {"random_exploration": 1, "pareto_construction": 2, "exploitation": 3}
        ranks = [order[r.phase] for r in records]
        assert ranks == sorted(ranks)

    def test_first_measured_configuration_is_x_max(self, fast_config):
        controller = fresh_controller(fast_config)
        records = run_campaign(controller, 1)
        assert records[0].explored[0] == controller.device.space.max_configuration()

    def test_phase1_explores_the_sobol_points(self, fast_config):
        controller = fresh_controller(fast_config)
        records = run_campaign(controller, 20)
        # x_max + the Sobol starting points (6% of the 90-point space).
        n_initial = fast_config.initial_samples(90) + 1
        phase1_explored = sum(
            r.explored_count for r in records if r.phase == "random_exploration"
        )
        assert phase1_explored == n_initial


class TestDeadlineSafety:
    @pytest.mark.parametrize("ratio", [1.2, 1.5, 2.0, 3.0])
    def test_no_round_misses_its_deadline(self, fast_config, ratio):
        controller = fresh_controller(fast_config)
        records = run_campaign(controller, 15, ratio=ratio)
        assert all(not r.missed for r in records)

    def test_tight_deadlines_trigger_guardian(self, fast_config):
        controller = fresh_controller(fast_config)
        records = run_campaign(controller, 10, ratio=1.15)
        assert any(r.guardian_triggered for r in records)
        assert all(not r.missed for r in records)

    def test_all_jobs_always_complete(self, fast_config):
        controller = fresh_controller(fast_config)
        records = run_campaign(controller, 12)
        assert all(r.jobs == JOBS for r in records)
        assert controller.device.jobs_executed == 12 * JOBS


class TestExploitationBehaviour:
    def test_exploitation_saves_energy_vs_x_max(self, fast_config):
        controller = fresh_controller(fast_config)
        records = run_campaign(controller, 25, ratio=3.0)
        exploit = [r for r in records if r.phase == "exploitation"]
        assert exploit, "campaign never reached exploitation"
        x_max_round = (
            controller.device.model.energy(controller.device.space.max_configuration())
            * JOBS
        )
        mean_exploit = sum(r.energy for r in exploit) / len(exploit)
        assert mean_exploit < 0.95 * x_max_round

    def test_longer_deadlines_lower_energy(self, fast_config):
        tight = fresh_controller(fast_config)
        run_campaign(tight, 25, ratio=1.5)
        loose = fresh_controller(fast_config)
        run_campaign(loose, 25, ratio=3.5)
        tight_exploit = [
            r.energy
            for r in run_campaign(tight, 5, ratio=1.5)
        ]
        loose_exploit = [
            r.energy
            for r in run_campaign(loose, 5, ratio=3.5)
        ]
        assert sum(loose_exploit) < sum(tight_exploit)

    def test_exploited_jobs_counted(self, fast_config):
        controller = fresh_controller(fast_config)
        records = run_campaign(controller, 20)
        last = records[-1]
        assert last.phase == "exploitation"
        assert last.exploited_jobs == JOBS


class TestMBOEngine:
    def test_mbo_runs_each_pareto_round(self, fast_config):
        controller = fresh_controller(fast_config)
        records = run_campaign(controller, 20)
        for record in records:
            if record.phase == "pareto_construction":
                assert record.mbo is not None
                assert record.mbo.batch_size >= 1
            else:
                assert record.mbo is None

    def test_mbo_cost_model_feeds_report(self, fast_config):
        cost = lambda n, k: (2.5, 30.0)  # noqa: E731
        controller = fresh_controller(fast_config, mbo_cost=cost)
        records = run_campaign(controller, 20)
        mbo_records = [r.mbo for r in records if r.mbo is not None]
        assert mbo_records
        assert all(m.latency == 2.5 and m.energy == 30.0 for m in mbo_records)

    def test_batch_size_respects_cap(self, fast_config):
        controller = fresh_controller(fast_config)
        records = run_campaign(controller, 20)
        for record in records:
            if record.mbo is not None:
                assert record.mbo.batch_size <= fast_config.max_batch_size


class TestObservations:
    def test_explored_count_grows_then_freezes(self, fast_config):
        controller = fresh_controller(fast_config)
        run_campaign(controller, 20)
        frozen = controller.explored_count
        run_campaign(controller, 3)
        assert controller.explored_count == frozen  # exploitation explores nothing

    def test_pareto_front_nonempty_after_exploration(self, fast_config):
        controller = fresh_controller(fast_config)
        run_campaign(controller, 20)
        front = controller.pareto_front()
        assert front.shape[0] >= 2

    def test_stopping_condition_recorded_hypervolumes(self, fast_config):
        controller = fresh_controller(fast_config)
        run_campaign(controller, 20)
        history = controller.stopping.history
        assert len(history) >= 2
        assert all(b >= a - 1e-12 for a, b in zip(history, history[1:]))


class TestInputValidation:
    def test_rejects_bad_round_parameters(self, fast_config):
        controller = fresh_controller(fast_config)
        with pytest.raises(ConfigurationError):
            controller.run_round(0, 10.0)
        with pytest.raises(ConfigurationError):
            controller.run_round(5, 0.0)

    def test_round_counter_increments(self, fast_config):
        controller = fresh_controller(fast_config)
        run_campaign(controller, 3)
        assert controller.rounds_run == 3


class TestDeterminism:
    def test_same_seed_same_energy(self, fast_config):
        a = fresh_controller(fast_config, seed=5)
        b = fresh_controller(fast_config, seed=5)
        energies_a = [r.energy for r in run_campaign(a, 10)]
        energies_b = [r.energy for r in run_campaign(b, 10)]
        assert energies_a == energies_b

    def test_different_device_seed_differs(self, fast_config):
        a = fresh_controller(fast_config, seed=5)
        b = fresh_controller(fast_config, seed=6)
        energies_a = [r.energy for r in run_campaign(a, 5)]
        energies_b = [r.energy for r in run_campaign(b, 5)]
        assert energies_a != energies_b


class TestGuardianSeesLeftoverJobs:
    """Regression: jobs left over after a planned schedule run at the
    fastest observed configuration, and their results must feed the
    guardian exactly like planned jobs do — previously they were dropped,
    so the T(x_max) running mean and the worst-job reserve went stale on
    precisely the noisy rounds that produce leftovers."""

    @staticmethod
    def _seeded_controller(fast_config, config):
        from repro.types import PerformanceSample

        controller = fresh_controller(fast_config)
        latency = controller.device.model.latency(config)
        energy = controller.device.model.energy(config)
        controller.store.add(
            PerformanceSample(
                config=config, latency=latency, energy=energy, duration=latency
            )
        )
        controller.guardian.update_t_xmax(
            controller.device.model.latency(
                controller.device.space.max_configuration()
            )
        )
        return controller

    @staticmethod
    def _run_leftovers(controller, jobs=3):
        from repro.core.records import RoundRecord
        from repro.types import RoundBudget, Schedule

        # An exhausted plan: every job becomes a leftover.
        schedule = Schedule(entries=(), expected_latency=0.0, expected_energy=0.0)
        budget = RoundBudget(total_jobs=jobs, deadline=60.0)
        record = RoundRecord(
            round_index=0, phase="exploitation", deadline=60.0, jobs=jobs
        )
        controller._execute_schedule(schedule, budget, record, None)
        assert budget.finished
        assert record.exploited_jobs == jobs
        return record

    def test_leftovers_at_x_max_feed_the_running_mean(self, fast_config):
        config = build_tiny_spec().space.max_configuration()
        controller = self._seeded_controller(fast_config, config)
        count_before = controller.guardian._t_xmax_count
        self._run_leftovers(controller, jobs=3)
        assert controller.guardian._t_xmax_count == count_before + 3

    def test_leftovers_elsewhere_feed_the_worst_job_reserve(self, fast_config):
        # Fastest observed configuration is a slow one (only observation),
        # so its job latencies exceed everything the guardian has seen and
        # must enlarge the reserve.
        space = build_tiny_spec().space
        slow = min(space, key=lambda c: (c.cpu, c.gpu, c.mem))
        controller = self._seeded_controller(fast_config, slow)
        reserve_before = controller.guardian.reserve
        self._run_leftovers(controller, jobs=2)
        assert controller.guardian.reserve > reserve_before
