"""Tests for the drift re-exploration extension (thermal throttling)."""

import pytest

from repro.core import BoFLConfig, BoFLController, Phase
from repro.core.phases import PhaseTransition
from repro.federated.deadlines import UniformDeadlines
from repro.hardware import SimulatedDevice, ThermalModel
from tests.conftest import build_tiny_spec, build_tiny_workload

JOBS = 60


def throttling_thermal():
    return ThermalModel(
        r_th=4.2,
        tau_th=60.0,
        t_ambient=25.0,
        throttle_start=42.0,
        throttle_full=58.0,
        max_slowdown=1.35,
    )


def run_thermal_campaign(drift: bool, rounds: int = 30, seed: int = 0):
    device = SimulatedDevice(
        build_tiny_spec(), build_tiny_workload(), seed=seed,
        thermal=throttling_thermal(),
    )
    config = BoFLConfig(
        tau=0.4,
        initial_sample_fraction=0.06,
        min_explored_fraction=0.15,
        max_batch_size=4,
        fit_restarts=0,
        # The scenario needs a surrogate that goes stale under throttling:
        # restart-free cold refits from the fixed prior provide exactly
        # that.  Warm-started refits (the default) track the throttled
        # surface well enough that drift never crosses the threshold.
        warm_start_fits=False,
        seed=1,
        drift_reexploration=drift,
        drift_threshold=0.08,
    )
    controller = BoFLController(device, config)
    t_min_cold = device.model.latency(device.space.max_configuration()) * JOBS
    deadlines = UniformDeadlines(3.2, floor=1.8).generate(t_min_cold, rounds, seed=3)
    records = [controller.run_round(JOBS, d) for d in deadlines]
    return controller, records


class TestPhaseRestart:
    def test_restart_transition_is_legal(self):
        transition = PhaseTransition(
            5, Phase.EXPLOITATION, Phase.RANDOM_EXPLORATION
        )
        assert transition.is_restart

    def test_forward_transitions_are_not_restarts(self):
        transition = PhaseTransition(
            1, Phase.RANDOM_EXPLORATION, Phase.PARETO_CONSTRUCTION
        )
        assert not transition.is_restart

    def test_other_backward_moves_still_rejected(self):
        with pytest.raises(ValueError):
            PhaseTransition(1, Phase.PARETO_CONSTRUCTION, Phase.RANDOM_EXPLORATION)


class TestDriftAdaptation:
    def test_without_adaptation_the_model_goes_stale(self):
        controller, records = run_thermal_campaign(drift=False)
        assert controller.restarts == 0
        # the realized exploitation latencies drift well past the plans
        assert controller._drift_ewma > 0.1
        # the stale plans force guardian sprints during exploitation
        sprints = sum(
            r.guardian_triggered for r in records if r.phase == "exploitation"
        )
        assert sprints >= 1

    def test_with_adaptation_the_model_stays_fresh(self):
        controller, records = run_thermal_campaign(drift=True)
        assert controller.restarts >= 1
        assert controller._drift_ewma < 0.1
        sprints = sum(
            r.guardian_triggered for r in records if r.phase == "exploitation"
        )
        assert sprints == 0

    def test_restart_transitions_are_recorded(self):
        controller, _ = run_thermal_campaign(drift=True)
        restarts = [t for t in controller.transitions if t.is_restart]
        assert len(restarts) == controller.restarts
        # after a restart the controller works back up to exploitation
        assert controller.phase in (
            Phase.EXPLOITATION, Phase.PARETO_CONSTRUCTION, Phase.RANDOM_EXPLORATION,
        )

    def test_deadline_safety_holds_in_both_modes(self):
        for drift in (False, True):
            _, records = run_thermal_campaign(drift=drift)
            assert all(not r.missed for r in records), f"drift={drift}"

    def test_no_restarts_without_thermal_drift(self, fast_config):
        device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=0)
        config = BoFLConfig(
            tau=fast_config.tau,
            initial_sample_fraction=fast_config.initial_sample_fraction,
            min_explored_fraction=fast_config.min_explored_fraction,
            max_batch_size=fast_config.max_batch_size,
            fit_restarts=0,
            seed=fast_config.seed,
            drift_reexploration=True,
            drift_threshold=0.08,
        )
        controller = BoFLController(device, config)
        t_min = device.model.latency(device.space.max_configuration()) * JOBS
        deadlines = UniformDeadlines(2.5).generate(t_min, 25, seed=7)
        for deadline in deadlines:
            controller.run_round(JOBS, deadline)
        assert controller.restarts == 0  # stable hardware: never triggers
