"""Edge-path tests that don't fit the per-module suites."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.base import PaceController
from repro.errors import ConfigurationError
from repro.hardware import SimulatedDevice, ThermalModel
from repro.hardware.noise import NoiselessMeasurement
from repro.ilp.model import IntegerProgram, LinearProgram
from repro.sim import make_controller
from repro.hardware.devices import jetson_agx
from repro.workloads import vit
from tests.conftest import build_tiny_spec, build_tiny_workload


class TestIntegerProgramModel:
    def test_default_integrality_is_all_integer(self):
        ip = IntegerProgram(LinearProgram(c=[1.0, 2.0]))
        assert list(ip.integer) == [True, True]
        assert ip.n_vars == 2

    def test_rejects_flag_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            IntegerProgram(LinearProgram(c=[1.0, 2.0]), integer=[True])


class TestPaceControllerTemplate:
    def test_cannot_instantiate_abstract(self, quiet_device):
        with pytest.raises(TypeError):
            PaceController(quiet_device)  # type: ignore[abstract]

    def test_run_round_validates_before_dispatch(self, quiet_device):
        from repro.baselines import PerformantController

        controller = PerformantController(quiet_device)
        with pytest.raises(ConfigurationError):
            controller.run_round(jobs=0, deadline=1.0)
        with pytest.raises(ConfigurationError):
            controller.run_round(jobs=5, deadline=-1.0)
        assert controller.rounds_run == 0  # failed calls don't count


class TestMakeControllerOptions:
    def test_without_mbo_cost(self):
        device = SimulatedDevice(jetson_agx(), vit(), seed=0)
        controller = make_controller("bofl", device, with_mbo_cost=False)
        assert controller.mbo_cost is None

    def test_with_mbo_cost_default(self):
        device = SimulatedDevice(jetson_agx(), vit(), seed=0)
        controller = make_controller("bofl", device)
        assert controller.mbo_cost is not None


class TestDeviceThermalMeasurement:
    def test_measurement_reflects_throttled_latency(self):
        thermal = ThermalModel(
            r_th=2.0, tau_th=100.0, t_ambient=25.0,
            throttle_start=40.0, throttle_full=60.0, max_slowdown=1.5,
        )
        thermal.temperature = 70.0  # pre-heated: full throttle
        device = SimulatedDevice(
            build_tiny_spec(), build_tiny_workload(),
            noise=NoiselessMeasurement(), thermal=thermal, seed=0,
        )
        cold_latency = device.model.latency(device.space.max_configuration())
        sample, _ = device.measure_configuration(
            device.space.max_configuration(), min_duration=0.2
        )
        assert sample.latency > cold_latency * 1.2  # throttling visible

    def test_measure_configuration_respects_max_jobs_with_thermal(self):
        device = SimulatedDevice(
            build_tiny_spec(), build_tiny_workload(),
            thermal=ThermalModel(), seed=0,
        )
        _, results = device.measure_configuration(
            device.space.max_configuration(), min_duration=100.0, max_jobs=2
        )
        assert len(results) == 2


class TestCLICampaignBofl:
    def test_bofl_campaign_runs(self, capsys):
        code = main(
            [
                "campaign",
                "--controller", "bofl",
                "--task", "vit",
                "--rounds", "2",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "configs explored" in out

    def test_run_with_seed_flag(self, capsys):
        assert main(["run", "fig2", "--seed", "0"]) == 0
        assert "spread" in capsys.readouterr().out.lower()


class TestSparseMatrixPaths:
    def test_lp_without_constraints_is_trivial(self):
        from repro.ilp.simplex import solve_lp

        sol = solve_lp(LinearProgram(c=[2.0, 3.0]))
        assert sol.is_optimal
        assert sol.objective == pytest.approx(0.0)
        assert np.allclose(sol.x, 0.0)
