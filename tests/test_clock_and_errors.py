"""Unit tests for the simulation clock and the exception hierarchy."""

import pytest

import repro.errors as errors
from repro.clock import SimulationClock
from repro.errors import ConfigurationError, DeadlineMissError, ReproError


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimulationClock(start=5.0)
        assert clock.advance(1.5) == pytest.approx(6.5)
        assert clock.now == pytest.approx(6.5)

    def test_advance_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            SimulationClock().advance(-0.1)

    def test_advance_to_never_goes_backwards(self):
        clock = SimulationClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigurationError):
            SimulationClock(start=-1.0)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not ReproError:
                assert issubclass(obj, ReproError), name

    def test_deadline_miss_error_carries_context(self):
        err = DeadlineMissError(round_index=3, deadline=10.0, elapsed=11.5)
        assert err.round_index == 3
        assert "round 3" in str(err)
        assert "11.5" in str(err)

    def test_specific_errors_are_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise errors.FrequencyError("nope")
        assert issubclass(errors.InfeasibleError, errors.OptimizationError)
        assert issubclass(errors.FrequencyError, errors.ConfigurationError)
