"""Regression tests: servertune overrides reach records and traces.

When a server controller scales a round's deadlines, that decision must
be auditable end to end — on the :class:`ServerRound` record
(``deadline_scale``), on every affected client's deadline, and as
``servertune.override`` events on the observability trace.  These tests
pin that path at both hook levels: the federated server and the
campaign round loop.
"""

import pytest

from repro.baselines import PerformantController
from repro.federated.client import FederatedClient
from repro.federated.deadlines import StaticDeadlines
from repro.federated.server import FederatedServer
from repro.federated.task import FLTaskSpec
from repro.hardware import SimulatedDevice
from repro.obs import runtime as obs
from repro.obs.events import read_jsonl
from repro.servertune.controllers import (
    FedGPOController,
    RoundFeedback,
    ServerTuneSpec,
    StaticKnobs,
)
from tests.conftest import build_tiny_spec, build_tiny_workload

ROUNDS = 3


def make_client(client_id, seed=0):
    spec = build_tiny_spec()
    device = SimulatedDevice(spec, build_tiny_workload(), seed=seed)
    task = FLTaskSpec(
        workload=build_tiny_workload(),
        batch_size=8,
        epochs=2,
        minibatches={"tiny": 6},
        rounds=ROUNDS,
    )
    return FederatedClient(
        client_id, PerformantController(device), task, seed=seed
    )


def make_server(controller=None, n_clients=3):
    clients = [make_client(f"c{i}", seed=i) for i in range(n_clients)]
    return FederatedServer(
        clients,
        deadline_schedule=StaticDeadlines(3.0),
        seed=0,
        server_controller=controller,
    )


def tightened_controller(step=0.2):
    """A FedGPO controller already holding a non-identity deadline scale."""
    controller = FedGPOController(
        ServerTuneSpec(controller="fedgpo", deadline_step=step)
    )
    # A straggler-free round pushes the EWMA under the lower threshold,
    # so the next round's knobs tighten the deadline to 1 - step.
    controller.observe(
        RoundFeedback(
            round_index=0,
            participants=3,
            buffered=3,
            stragglers=0,
            energy=10.0,
            latency=1.0,
        )
    )
    return controller


class TestServerRoundRecords:
    def test_override_lands_on_the_round_record(self):
        server = make_server(tightened_controller(step=0.2))
        record = server.run_round(0, total_rounds=ROUNDS)
        assert record.deadline_scale == pytest.approx(0.8)

    def test_uncontrolled_rounds_record_identity_scale(self):
        server = make_server(controller=None)
        record = server.run_round(0, total_rounds=ROUNDS)
        assert record.deadline_scale == 1.0

    def test_static_controller_records_identity_scale(self):
        server = make_server(StaticKnobs(ServerTuneSpec()))
        record = server.run_round(0, total_rounds=ROUNDS)
        assert record.deadline_scale == 1.0

    def test_client_deadlines_actually_scaled(self):
        """The recorded scale is the scale the clients trained under."""
        tuned = make_server(tightened_controller(step=0.2))
        plain = make_server(controller=None)
        tuned_round = tuned.run_round(0, total_rounds=ROUNDS)
        plain_round = plain.run_round(0, total_rounds=ROUNDS)
        assert len(tuned_round.reports) == len(plain_round.reports)
        for tuned_report, plain_report in zip(
            tuned_round.reports, plain_round.reports
        ):
            assert tuned_report.record.deadline == pytest.approx(
                plain_report.record.deadline * 0.8
            )

    def test_participation_knob_truncates_the_selection(self):
        controller = tightened_controller(step=0.2)
        # The same comfortable round also shed participation by 10%.
        spec = controller.spec
        assert spec.participation_step == pytest.approx(0.1)
        server = make_server(controller, n_clients=4)
        record = server.run_round(0, total_rounds=ROUNDS)
        # 4 participants * 0.9 participation -> round(3.6) = 4 kept; use a
        # deeper cut to see truncation.
        assert len(record.participants) <= 4
        for _ in range(6):
            controller.observe(
                RoundFeedback(
                    round_index=0, participants=4, buffered=4,
                    stragglers=0, energy=10.0, latency=1.0,
                )
            )
        expected = max(1, round(4 * controller.knobs_for(1).participation))
        record = server.run_round(1, total_rounds=ROUNDS)
        assert len(record.participants) == expected < 4


class TestOverrideTrace:
    def test_override_events_reach_the_trace(self, tmp_path):
        server = make_server(tightened_controller(step=0.2))
        with obs.session(deterministic=True) as session:
            record = server.run_round(0, total_rounds=ROUNDS)
        path = session.log.dump_jsonl(tmp_path / "server.jsonl")
        overrides = [
            e for e in read_jsonl(path) if e.kind == "servertune.override"
        ]
        # One override per participant deadline assignment.
        assert len(overrides) == len(record.reports)
        for event in overrides:
            assert event.payload["context"] == "server"
            assert event.payload["scale"] == pytest.approx(0.8)
            assert event.payload["deadline"] == pytest.approx(
                event.payload["base_deadline"] * 0.8
            )

    def test_unscaled_rounds_emit_no_override(self, tmp_path):
        server = make_server(StaticKnobs(ServerTuneSpec()))
        with obs.session(deterministic=True) as session:
            server.run_round(0, total_rounds=ROUNDS)
        path = session.log.dump_jsonl(tmp_path / "static.jsonl")
        kinds = {e.kind for e in read_jsonl(path)}
        assert "servertune.override" not in kinds

    def test_campaign_level_override_reaches_trace_and_records(self, tmp_path):
        """The campaign round loop scales deadlines and says so."""
        from repro.sim import clear_campaign_cache
        from repro.sim.runner import run_campaign

        clear_campaign_cache()
        spec = ServerTuneSpec(controller="fedgpo", deadline_step=0.2)
        with obs.session(deterministic=True) as session:
            tuned = run_campaign(
                "agx", "vit", "performant", 2.0,
                rounds=4, seed=0, use_cache=False, servertune=spec,
            )
        path = session.log.dump_jsonl(tmp_path / "campaign.jsonl")
        overrides = [
            e for e in read_jsonl(path) if e.kind == "servertune.override"
        ]
        assert overrides, "adaptive campaign emitted no override events"
        for event in overrides:
            assert event.payload["context"] == "campaign"
            assert event.payload["scale"] != 1.0
        static = run_campaign(
            "agx", "vit", "performant", 2.0,
            rounds=4, seed=0, use_cache=False,
        )
        scaled_rounds = {e.payload["round"] for e in overrides}
        for index in scaled_rounds:
            assert tuned.records[index].deadline != static.records[index].deadline
