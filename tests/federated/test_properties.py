"""Property-based (Hypothesis) tests over the federated layer.

Aggregation rules and client selectors are the parts of the federation
stack every later scaling layer composes with, so their algebraic
contracts are pinned here as properties rather than examples:

* FedAvg is invariant under weight rescaling and equivariant under
  client permutation;
* the trimmed mean stays inside the per-coordinate envelope of the
  updates and degrades to the unweighted mean at ``trim=0``;
* selectors are pure functions of ``(seed, round_index)`` and always
  return exactly ``participants_per_round`` distinct clients.

CI runs these with ``--hypothesis-seed=0`` for reproducible examples.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated.aggregation import FedAvg, TrimmedMeanAggregator
from repro.federated.selection import EnergyAwareSelector, RandomSelector

#: Bounded, finite floats: aggregation contracts are algebraic, not
#: about float-overflow edge cases.
FINITE = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
WEIGHT = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)
SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
ROUNDS = st.integers(min_value=0, max_value=10_000)


@st.composite
def updates_and_weights(draw, min_clients=1, max_clients=6):
    """N client updates (same layer shapes) with positive weights."""
    n_clients = draw(st.integers(min_value=min_clients, max_value=max_clients))
    shapes = draw(
        st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3)
    )
    updates = [
        [
            np.asarray(
                draw(st.lists(FINITE, min_size=size, max_size=size)), dtype=float
            )
            for size in shapes
        ]
        for _ in range(n_clients)
    ]
    weights = [draw(WEIGHT) for _ in range(n_clients)]
    return updates, weights


def _assert_layers_close(a, b):
    assert len(a) == len(b)
    for layer_a, layer_b in zip(a, b):
        np.testing.assert_allclose(layer_a, layer_b, rtol=1e-9, atol=1e-6)


class TestFedAvgProperties:
    @settings(deadline=None)
    @given(uw=updates_and_weights(), scale=WEIGHT)
    def test_weight_normalization_invariant(self, uw, scale):
        """Rescaling every weight by the same factor changes nothing."""
        updates, weights = uw
        base = FedAvg().aggregate(updates, weights)
        rescaled = FedAvg().aggregate(updates, [w * scale for w in weights])
        _assert_layers_close(base, rescaled)

    @settings(deadline=None)
    @given(uw=updates_and_weights(min_clients=2), seed=SEEDS)
    def test_permutation_equivariant(self, uw, seed):
        """Client order is irrelevant as long as weights travel along."""
        updates, weights = uw
        perm = np.random.default_rng(seed).permutation(len(updates))
        base = FedAvg().aggregate(updates, weights)
        shuffled = FedAvg().aggregate(
            [updates[i] for i in perm], [weights[i] for i in perm]
        )
        _assert_layers_close(base, shuffled)


class TestTrimmedMeanProperties:
    @settings(deadline=None)
    @given(data=st.data(), trim=st.integers(min_value=0, max_value=2))
    def test_bounded_by_coordinate_envelope(self, data, trim):
        """Each output coordinate lies within the updates' min/max there."""
        updates, weights = data.draw(
            updates_and_weights(min_clients=2 * trim + 1, max_clients=2 * trim + 5)
        )
        out = TrimmedMeanAggregator(trim=trim).aggregate(updates, weights)
        for layer_index, layer in enumerate(out):
            stacked = np.stack([u[layer_index] for u in updates])
            assert np.all(layer >= stacked.min(axis=0) - 1e-9)
            assert np.all(layer <= stacked.max(axis=0) + 1e-9)

    @settings(deadline=None)
    @given(uw=updates_and_weights())
    def test_trim_zero_degrades_to_fedavg(self, uw):
        """No trimming == FedAvg under equal weights (the plain mean)."""
        updates, weights = uw
        trimmed = TrimmedMeanAggregator(trim=0).aggregate(updates, weights)
        fedavg = FedAvg().aggregate(updates, [1.0] * len(updates))
        _assert_layers_close(trimmed, fedavg)


class _Client:
    def __init__(self, client_id):
        self.client_id = client_id

    def __repr__(self):
        return self.client_id


class TestSelectorProperties:
    @settings(deadline=None)
    @given(
        pool=st.integers(min_value=1, max_value=40),
        participants=st.integers(min_value=1, max_value=40),
        seed=SEEDS,
        round_index=ROUNDS,
    )
    def test_random_selector_deterministic_and_exact(
        self, pool, participants, seed, round_index
    ):
        clients = [f"c{i}" for i in range(pool)]
        first = RandomSelector(participants, seed=seed).select(clients, round_index)
        second = RandomSelector(participants, seed=seed).select(clients, round_index)
        assert first == second
        expected = min(participants, pool)
        assert len(first) == expected == len(set(first))
        assert set(first) <= set(clients)

    @settings(deadline=None)
    @given(
        pool=st.integers(min_value=2, max_value=25),
        participants=st.integers(min_value=1, max_value=25),
        epsilon=st.floats(min_value=0.0, max_value=1.0),
        seed=SEEDS,
        round_index=ROUNDS,
        energies=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            max_size=25,
        ),
    )
    def test_energy_selector_deterministic_and_exact(
        self, pool, participants, epsilon, seed, round_index, energies
    ):
        clients = [_Client(f"c{i}") for i in range(pool)]

        def build():
            selector = EnergyAwareSelector(participants, epsilon=epsilon, seed=seed)
            for i, energy in enumerate(energies):
                selector.observe(f"c{i % pool}", energy)
            return selector

        first = build().select(clients, round_index)
        second = build().select(clients, round_index)
        assert [c.client_id for c in first] == [c.client_id for c in second]
        expected = min(participants, pool)
        picked = {c.client_id for c in first}
        assert len(first) == expected == len(picked)

    @settings(deadline=None)
    @given(
        pool=st.integers(min_value=2, max_value=20),
        seed=SEEDS,
        round_a=ROUNDS,
        round_b=ROUNDS,
    )
    def test_random_selector_pure_in_round_index(self, pool, seed, round_a, round_b):
        """Selecting rounds out of order (or twice) never changes a round."""
        clients = [f"c{i}" for i in range(pool)]
        selector = RandomSelector(max(1, pool // 2), seed=seed)
        forward = (
            selector.select(clients, round_a),
            selector.select(clients, round_b),
        )
        backward = (
            selector.select(clients, round_b),
            selector.select(clients, round_a),
        )
        assert forward == (backward[1], backward[0])
