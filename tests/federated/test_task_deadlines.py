"""Unit tests for FL task specs and deadline schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.federated.deadlines import StaticDeadlines, UniformDeadlines
from repro.federated.task import (
    cifar10_vit,
    imagenet_resnet50,
    imdb_lstm,
    paper_tasks,
)


class TestTable2Specs:
    def test_cifar10_vit(self, agx_spec, tx2_spec):
        task = cifar10_vit()
        assert (task.batch_size, task.epochs) == (32, 5)
        assert task.jobs_per_round(agx_spec) == 200
        assert task.jobs_per_round(tx2_spec) == 75
        assert task.name == "CIFAR10-ViT"

    def test_imagenet_resnet50(self, agx_spec, tx2_spec):
        task = imagenet_resnet50()
        assert (task.batch_size, task.epochs) == (8, 2)
        assert task.jobs_per_round(agx_spec) == 180
        assert task.jobs_per_round(tx2_spec) == 60

    def test_imdb_lstm(self, agx_spec, tx2_spec):
        task = imdb_lstm()
        assert (task.batch_size, task.epochs) == (8, 4)
        assert task.jobs_per_round(agx_spec) == 160
        assert task.jobs_per_round(tx2_spec) == 80

    def test_default_rounds_is_100(self):
        for task in paper_tasks():
            assert task.rounds == 100

    def test_samples_on_device(self, agx_spec):
        assert cifar10_vit().samples_on(agx_spec) == 40 * 32

    def test_unknown_device_raises(self, tiny_spec):
        with pytest.raises(ConfigurationError):
            cifar10_vit().jobs_per_round(tiny_spec)


class TestUniformDeadlines:
    def test_range_respected(self):
        schedule = UniformDeadlines(ratio=2.0, floor=1.05)
        deadlines = schedule.generate(t_min=40.0, rounds=200, seed=0)
        assert len(deadlines) == 200
        assert min(deadlines) >= 1.05 * 40.0
        assert max(deadlines) <= 2.0 * 40.0

    def test_deterministic_per_seed(self):
        schedule = UniformDeadlines(2.0)
        assert schedule.generate(40.0, 10, seed=1) == schedule.generate(40.0, 10, seed=1)
        assert schedule.generate(40.0, 10, seed=1) != schedule.generate(40.0, 10, seed=2)

    def test_spreads_over_range(self):
        deadlines = UniformDeadlines(4.0).generate(10.0, 500, seed=0)
        assert np.std(deadlines) > 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformDeadlines(ratio=1.0)
        with pytest.raises(ConfigurationError):
            UniformDeadlines(ratio=2.0, floor=2.5)
        with pytest.raises(ConfigurationError):
            UniformDeadlines(2.0).generate(t_min=-1.0, rounds=5)
        with pytest.raises(ConfigurationError):
            UniformDeadlines(2.0).generate(t_min=1.0, rounds=0)


class TestStaticDeadlines:
    def test_constant(self):
        deadlines = StaticDeadlines(1.5).generate(t_min=40.0, rounds=5)
        assert deadlines == [60.0] * 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaticDeadlines(0.9)
