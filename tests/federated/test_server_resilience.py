"""Server resilience: all-failed rounds and robust-aggregation fallback."""

import numpy as np
import pytest

from repro.baselines import PerformantController
from repro.errors import ConfigurationError
from repro.federated.aggregation import FedAvg, TrimmedMeanAggregator
from repro.federated.client import FederatedClient
from repro.federated.deadlines import DeadlineSchedule
from repro.federated.server import FederatedServer
from repro.federated.task import FLTaskSpec
from repro.hardware import SimulatedDevice
from repro.ml.data import make_blobs_classification
from repro.ml.models import MLPClassifier
from repro.obs import runtime as obs
from tests.conftest import build_tiny_spec, build_tiny_workload


class ImpossibleDeadlines(DeadlineSchedule):
    """Deadlines far below T_min: every client misses every round."""

    def generate(self, t_min, rounds, seed=0):
        return [t_min * 1e-6] * rounds


def tiny_task():
    return FLTaskSpec(
        workload=build_tiny_workload(),
        batch_size=8,
        epochs=1,
        minibatches={"tiny": 4},
        rounds=10,
    )


def make_client(client_id, seed=0):
    device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=seed)
    data = make_blobs_classification(32, n_features=8, n_classes=2, seed=seed)
    model = MLPClassifier(8, [8], 2, seed=seed)
    return FederatedClient(
        client_id,
        PerformantController(device),
        tiny_task(),
        model=model,
        data=data,
        seed=seed,
    )


def make_server(n_clients=3, aggregator=None, deadline_schedule=None, seed=0):
    clients = [make_client(f"c{i}", seed=seed + i) for i in range(n_clients)]
    eval_data = make_blobs_classification(32, n_features=8, n_classes=2, seed=99)
    return FederatedServer(
        clients,
        global_model=MLPClassifier(8, [8], 2, seed=7),
        aggregator=aggregator,
        deadline_schedule=deadline_schedule,
        eval_data=eval_data,
        seed=seed,
    )


def weights_equal(a, b):
    return all(np.array_equal(x, y) for x, y in zip(a, b))


class TestAllFailedRounds:
    def test_all_failed_round_keeps_previous_weights(self):
        server = make_server(deadline_schedule=ImpossibleDeadlines())
        before = [w.copy() for w in server.global_model.get_weights()]
        record = server.run_round(0, 3)
        assert not record.aggregated
        assert len(record.stragglers) == len(record.participants)
        assert weights_equal(server.global_model.get_weights(), before)

    def test_all_failed_round_emits_event(self):
        server = make_server(deadline_schedule=ImpossibleDeadlines())
        with obs.session() as session:
            server.run_round(0, 3)
        (event,) = session.log.events("server.round_failed")
        assert event.payload["participants"] == 3
        assert event.payload["stragglers"] == 3
        assert session.metrics.counters["server.failed_rounds"] == 1

    def test_campaign_survives_repeated_failed_rounds(self):
        server = make_server(deadline_schedule=ImpossibleDeadlines())
        history = server.run(3)
        assert all(not r.aggregated for r in history)


class TestTrimmedMeanGuards:
    def test_impossible_federation_rejected_at_construction(self):
        clients = [make_client(f"c{i}", seed=i) for i in range(2)]
        with pytest.raises(ConfigurationError, match="at least 3 client updates"):
            FederatedServer(
                clients,
                global_model=MLPClassifier(8, [8], 2, seed=7),
                aggregator=TrimmedMeanAggregator(trim=1),
            )

    def test_min_updates_advertised(self):
        assert FedAvg().min_updates == 1
        assert TrimmedMeanAggregator(trim=1).min_updates == 3
        assert TrimmedMeanAggregator(trim=2).min_updates == 5

    def test_short_round_degrades_to_fedavg_with_event(self):
        class FirstClientOnly:
            def select(self, clients, round_index):
                return clients[:1]

        server = make_server(n_clients=3, aggregator=TrimmedMeanAggregator(trim=1))
        server.selector = FirstClientOnly()
        with obs.session() as session:
            record = server.run_round(0, 3)
        assert record.aggregated
        assert record.aggregation_fallback
        (event,) = session.log.events("server.aggregation_fallback")
        assert event.payload["aggregator"] == "TrimmedMeanAggregator"
        assert event.payload["required"] == 3
        assert event.payload["received"] == 1

    def test_full_round_uses_the_robust_rule(self):
        server = make_server(n_clients=3, aggregator=TrimmedMeanAggregator(trim=1))
        record = server.run_round(0, 3)
        assert record.aggregated
        assert not record.aggregation_fallback
