"""Coverage for ServerRound accounting, selector cold-start, and the
all-clients-straggle edge case."""

import numpy as np
import pytest

from repro.core.records import RoundRecord
from repro.errors import ConfigurationError
from repro.federated.client import ClientReport
from repro.federated.deadlines import DeadlineSchedule
from repro.federated.selection import EnergyAwareSelector
from repro.federated.server import FederatedServer, ServerRound
from repro.ml.data import make_blobs_classification
from repro.ml.models import MLPClassifier
from tests.federated.test_client_server import make_client


def make_report(client_id, *, energy=10.0, missed=False, weights=None):
    record = RoundRecord(
        round_index=0,
        phase="exploit",
        deadline=10.0,
        jobs=4,
        elapsed=12.0 if missed else 5.0,
        energy=energy,
        missed=missed,
    )
    return ClientReport(
        client_id=client_id, weights=weights, n_samples=50, record=record
    )


class TestServerRoundAccounting:
    def test_total_energy_sums_all_reports_including_stragglers(self):
        rnd = ServerRound(
            round_index=0,
            participants=["a", "b", "c"],
            reports=[
                make_report("a", energy=3.0),
                make_report("b", energy=5.0, missed=True),
                make_report("c", energy=7.0),
            ],
        )
        # A missed deadline wastes the energy but the fleet still paid it.
        assert rnd.total_energy == pytest.approx(15.0)

    def test_stragglers_are_the_failed_reports_in_order(self):
        rnd = ServerRound(
            round_index=0,
            participants=["a", "b", "c"],
            reports=[
                make_report("a", missed=True),
                make_report("b"),
                make_report("c", missed=True),
            ],
        )
        assert rnd.stragglers == ["a", "c"]

    def test_empty_round_has_zero_energy_and_no_stragglers(self):
        rnd = ServerRound(round_index=0, participants=[])
        assert rnd.total_energy == 0.0
        assert rnd.stragglers == []


class TestEnergyAwareSelectorColdStart:
    def test_unobserved_clients_estimate_as_free(self):
        selector = EnergyAwareSelector(2, seed=0)
        assert selector.estimated_energy("never-seen") == 0.0

    def test_selection_works_before_any_observation(self):
        # Cold start: no history at all; selection must still return the
        # requested count without raising.
        selector = EnergyAwareSelector(3, epsilon=0.5, seed=0)
        picked = selector.select([f"c{i}" for i in range(8)], 0)
        assert len(picked) == 3 == len(set(picked))

    def test_first_observation_seeds_the_ewma_exactly(self):
        selector = EnergyAwareSelector(1, smoothing=0.3, seed=0)
        selector.observe("c0", 40.0)
        assert selector.estimated_energy("c0") == pytest.approx(40.0)
        selector.observe("c0", 80.0)
        assert selector.estimated_energy("c0") == pytest.approx(0.7 * 40.0 + 0.3 * 80.0)

    def test_newcomers_outrank_observed_clients(self):
        # Greedy share prefers the cheapest estimate; a cold client's 0.0
        # beats any observed cost, so newcomers get measured.
        selector = EnergyAwareSelector(1, epsilon=0.0, seed=0)
        selector.observe("old", 1.0)

        class C:
            def __init__(self, client_id):
                self.client_id = client_id

        picked = selector.select([C("old"), C("new")], 0)
        assert [c.client_id for c in picked] == ["new"]

    def test_rejects_negative_energy(self):
        selector = EnergyAwareSelector(1)
        with pytest.raises(ConfigurationError):
            selector.observe("c0", -1.0)


class ImpossibleDeadlines(DeadlineSchedule):
    """Deadlines no controller can meet: a twentieth of ``T_min``."""

    def generate(self, t_min, rounds, seed=0):
        self._check(t_min, rounds)
        return [0.05 * t_min] * rounds


class TestAllClientsStraggle:
    def test_round_survives_with_everyone_straggling(self):
        clients = [make_client(f"c{i}", seed=i) for i in range(3)]
        server = FederatedServer(
            clients, deadline_schedule=ImpossibleDeadlines(), seed=0
        )
        history = server.run(2)
        assert len(history) == 2
        for rnd in history:
            assert sorted(rnd.stragglers) == ["c0", "c1", "c2"]
            assert not rnd.aggregated
            # The wasted rounds still show up in the energy ledger.
            assert rnd.total_energy > 0
        assert server.total_energy == pytest.approx(
            sum(r.total_energy for r in history)
        )

    def test_global_model_is_untouched_when_no_report_survives(self):
        data = make_blobs_classification(64, n_features=8, n_classes=2, seed=0)
        clients = [make_client(f"c{i}", with_model=True, seed=i) for i in range(2)]
        model = MLPClassifier(8, [8], 2, seed=0)
        server = FederatedServer(
            clients,
            global_model=model,
            deadline_schedule=ImpossibleDeadlines(),
            eval_data=data,
            seed=0,
        )
        before = [w.copy() for w in model.get_weights()]
        history = server.run(1)
        assert not history[0].aggregated
        for old, new in zip(before, model.get_weights()):
            np.testing.assert_array_equal(old, new)
