"""Unit tests for aggregation rules and client selection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.federated.aggregation import FedAvg, TrimmedMeanAggregator
from repro.federated.selection import AllClientsSelector, RandomSelector


def weights_like(*scalars):
    return [[np.full((2, 2), s), np.full(3, s)] for s in scalars]


class TestFedAvg:
    def test_equal_weights_is_mean(self):
        updates = weights_like(1.0, 3.0)
        out = FedAvg().aggregate(updates, [1.0, 1.0])
        assert np.allclose(out[0], 2.0)
        assert np.allclose(out[1], 2.0)

    def test_sample_weighted(self):
        updates = weights_like(0.0, 4.0)
        out = FedAvg().aggregate(updates, [3.0, 1.0])
        assert np.allclose(out[0], 1.0)

    def test_single_client_identity(self):
        updates = weights_like(7.0)
        out = FedAvg().aggregate(updates, [5.0])
        assert np.allclose(out[0], 7.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            FedAvg().aggregate([], [])

    def test_rejects_weight_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            FedAvg().aggregate(weights_like(1.0, 2.0), [1.0])

    def test_rejects_zero_total_weight(self):
        with pytest.raises(ConfigurationError):
            FedAvg().aggregate(weights_like(1.0, 2.0), [0.0, 0.0])

    def test_rejects_shape_mismatch(self):
        a = [np.zeros((2, 2))]
        b = [np.zeros((3, 3))]
        with pytest.raises(ConfigurationError):
            FedAvg().aggregate([a, b], [1.0, 1.0])


class TestTrimmedMean:
    def test_discards_outliers(self):
        updates = weights_like(1.0, 1.0, 1.0, 100.0, -100.0)
        out = TrimmedMeanAggregator(trim=1).aggregate(updates, [1] * 5)
        assert np.allclose(out[0], 1.0)

    def test_requires_enough_clients(self):
        with pytest.raises(ConfigurationError):
            TrimmedMeanAggregator(trim=1).aggregate(weights_like(1.0, 2.0), [1, 1])

    def test_trim_zero_is_plain_mean(self):
        out = TrimmedMeanAggregator(trim=0).aggregate(weights_like(1.0, 3.0), [1, 1])
        assert np.allclose(out[0], 2.0)


class TestSelectors:
    def test_all_clients(self):
        clients = ["a", "b", "c"]
        assert AllClientsSelector().select(clients, 0) == clients

    def test_all_clients_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            AllClientsSelector().select([], 0)

    def test_random_subset_size(self):
        clients = list("abcdefgh")
        selector = RandomSelector(participants_per_round=3, seed=0)
        picked = selector.select(clients, 0)
        assert len(picked) == 3
        assert set(picked) <= set(clients)

    def test_random_varies_across_rounds(self):
        clients = list("abcdefgh")
        selector = RandomSelector(3, seed=0)
        rounds = [tuple(selector.select(clients, i)) for i in range(10)]
        assert len(set(rounds)) > 1

    def test_random_caps_at_pool_size(self):
        selector = RandomSelector(10, seed=0)
        assert len(selector.select(["a", "b"], 0)) == 2

    def test_random_validates(self):
        with pytest.raises(ConfigurationError):
            RandomSelector(0)
