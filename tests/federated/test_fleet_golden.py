"""Golden-trace regression test for the ``ext_fleet`` experiment.

Pins the experiment's rendered summary table and its deterministic
observability trace byte-for-byte at a fixed seed and a small round
count.  Any change to the federation stack, the simulator, or the obs
layer that shifts these artifacts must be deliberate:

    PYTHONPATH=src:. python tests/federated/golden/regen.py

regenerates both files; review the diff before committing it.
"""

import pathlib

from repro.experiments import ext_fleet
from repro.obs import runtime as obs

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Small on purpose: 2 rounds keeps the BoFL clients in their cheap
#: early-exploration regime so the test stays fast while still covering
#: selection, deadline assignment, straggler accounting and aggregation.
ROUNDS = 2
DEADLINE_RATIO = 2.5
SEED = 0


def produce_artifacts(trace_path):
    """Run the pinned ``ext_fleet`` configuration and record its trace.

    Returns the rendered summary; writes the deterministic obs trace
    (wall-clock payloads stripped) to ``trace_path``.  Shared by the test
    below and by ``golden/regen.py``.
    """
    with obs.session(deterministic=True) as session:
        payload = ext_fleet.run(rounds=ROUNDS, deadline_ratio=DEADLINE_RATIO, seed=SEED)
    session.log.dump_jsonl(trace_path)
    return ext_fleet.render(payload) + "\n"


def test_ext_fleet_matches_golden_artifacts(tmp_path):
    trace_path = tmp_path / "ext_fleet_trace.jsonl"
    summary = produce_artifacts(trace_path)

    golden_summary = (GOLDEN_DIR / "ext_fleet_summary.txt").read_text()
    assert summary == golden_summary, (
        "ext_fleet summary drifted from the golden snapshot; if the change "
        "is intentional, regenerate with tests/federated/golden/regen.py"
    )

    golden_trace = (GOLDEN_DIR / "ext_fleet_trace.jsonl").read_bytes()
    assert trace_path.read_bytes() == golden_trace, (
        "ext_fleet deterministic obs trace is no longer byte-identical to "
        "the golden snapshot; if the change is intentional, regenerate with "
        "tests/federated/golden/regen.py"
    )
