"""Integration-grade unit tests for FL clients and the server."""

import numpy as np
import pytest

from repro.baselines import PerformantController
from repro.errors import ConfigurationError
from repro.federated.client import FederatedClient
from repro.federated.deadlines import StaticDeadlines
from repro.federated.server import FederatedServer
from repro.federated.task import FLTaskSpec
from repro.hardware import SimulatedDevice
from repro.ml.data import make_blobs_classification
from repro.ml.models import MLPClassifier
from tests.conftest import build_tiny_spec, build_tiny_workload


def tiny_task(minibatches=6, epochs=2, batch_size=8):
    return FLTaskSpec(
        workload=build_tiny_workload(),
        batch_size=batch_size,
        epochs=epochs,
        minibatches={"tiny": minibatches},
        rounds=10,
    )


def make_client(client_id="c0", with_model=False, seed=0):
    spec = build_tiny_spec()
    device = SimulatedDevice(spec, build_tiny_workload(), seed=seed)
    controller = PerformantController(device)
    task = tiny_task()
    model = data = None
    if with_model:
        data = make_blobs_classification(64, n_features=8, n_classes=2, seed=seed)
        model = MLPClassifier(8, [8], 2, seed=seed)
    return FederatedClient(
        client_id, controller, task, model=model, data=data, seed=seed
    )


class TestFederatedClient:
    def test_energy_only_jobs_follow_spec(self):
        client = make_client()
        assert client.jobs_per_round == 12  # 2 epochs x 6 minibatches

    def test_real_trainer_jobs_follow_shard(self):
        client = make_client(with_model=True)
        # 64 samples / batch 8 = 8 minibatches x 2 epochs.
        assert client.jobs_per_round == 16

    def test_requires_model_and_data_together(self):
        spec = build_tiny_spec()
        device = SimulatedDevice(spec, build_tiny_workload(), seed=0)
        with pytest.raises(ConfigurationError):
            FederatedClient(
                "bad",
                PerformantController(device),
                tiny_task(),
                model=MLPClassifier(4, [4], 2),
                data=None,
            )

    def test_measure_t_min_positive_and_consistent(self):
        client = make_client()
        t_min = client.measure_t_min()
        x_max = client.device.space.max_configuration()
        expected = client.device.model.latency(x_max) * client.jobs_per_round
        assert t_min == pytest.approx(expected)

    def test_train_round_reports_record(self):
        client = make_client()
        report = client.train_round(None, deadline=60.0)
        assert report.client_id == "c0"
        assert report.weights is None
        assert report.record.jobs == 12
        assert report.succeeded

    def test_train_round_updates_real_model(self):
        client = make_client(with_model=True)
        before = [w.copy() for w in client.model.get_weights()]
        report = client.train_round(None, deadline=60.0)
        assert report.weights is not None
        changed = any(
            not np.allclose(a, b) for a, b in zip(before, report.weights)
        )
        assert changed

    def test_global_weights_are_loaded(self):
        client = make_client(with_model=True)
        zeros = [np.zeros_like(w) for w in client.model.get_weights()]
        client.train_round(zeros, deadline=60.0)
        # training started from zeros, so biases in later layers move little;
        # at minimum the model must not still equal its random init.
        assert client.model is not None


class TestFederatedServer:
    def _server(self, n_clients=3, with_model=True):
        clients = [
            make_client(f"c{i}", with_model=with_model, seed=i)
            for i in range(n_clients)
        ]
        global_model = MLPClassifier(8, [8], 2, seed=9) if with_model else None
        eval_data = (
            make_blobs_classification(100, n_features=8, n_classes=2, seed=77)
            if with_model
            else None
        )
        return FederatedServer(
            clients,
            global_model=global_model,
            deadline_schedule=StaticDeadlines(3.0),
            eval_data=eval_data,
            seed=0,
        )

    def test_round_collects_all_reports(self):
        server = self._server()
        record = server.run_round(0, total_rounds=5)
        assert len(record.reports) == 3
        assert record.aggregated
        assert record.global_accuracy is not None

    def test_energy_accumulates(self):
        server = self._server(with_model=False)
        server.run(3)
        assert server.total_energy > 0
        assert len(server.history) == 3

    def test_deadlines_scale_with_client_t_min(self):
        server = self._server(with_model=False)
        client = server.clients[0]
        deadline = server._deadline_for(client, 0, 5)
        assert deadline == pytest.approx(3.0 * client.measure_t_min())

    def test_aggregation_moves_global_model(self):
        server = self._server()
        before = [w.copy() for w in server.global_model.get_weights()]
        server.run_round(0, 5)
        after = server.global_model.get_weights()
        assert any(not np.allclose(a, b) for a, b in zip(before, after))

    def test_accuracy_improves_with_rounds(self):
        server = self._server()
        server.run(4)
        series = [a for a in server.accuracy_series() if a is not None]
        assert series[-1] > 0.8

    def test_requires_clients(self):
        with pytest.raises(ConfigurationError):
            FederatedServer([])

    def test_run_validates_rounds(self):
        server = self._server(with_model=False)
        with pytest.raises(ConfigurationError):
            server.run(0)
