"""Tests for the energy-aware selector and client dropout (extensions)."""

from dataclasses import dataclass

import pytest

from repro.baselines import PerformantController
from repro.errors import ConfigurationError
from repro.federated.selection import EnergyAwareSelector
from repro.federated.server import FederatedServer
from repro.federated.client import FederatedClient
from repro.federated.deadlines import StaticDeadlines
from repro.federated.task import FLTaskSpec
from repro.hardware import SimulatedDevice
from tests.conftest import build_tiny_spec, build_tiny_workload


@dataclass
class FakeClient:
    client_id: str


class TestEnergyAwareSelector:
    def test_prefers_cheap_clients(self):
        selector = EnergyAwareSelector(2, epsilon=0.0, seed=0)
        clients = [FakeClient(f"c{i}") for i in range(4)]
        for cid, energy in (("c0", 100.0), ("c1", 10.0), ("c2", 50.0), ("c3", 200.0)):
            selector.observe(cid, energy)
        picked = {c.client_id for c in selector.select(clients, 0)}
        assert picked == {"c1", "c2"}

    def test_unseen_clients_rank_first(self):
        selector = EnergyAwareSelector(1, epsilon=0.0, seed=0)
        clients = [FakeClient("seen"), FakeClient("fresh")]
        selector.observe("seen", 5.0)
        picked = selector.select(clients, 0)
        assert picked[0].client_id == "fresh"

    def test_ewma_update(self):
        selector = EnergyAwareSelector(1, smoothing=0.5)
        selector.observe("c", 10.0)
        selector.observe("c", 20.0)
        assert selector.estimated_energy("c") == pytest.approx(15.0)

    def test_epsilon_explores_expensive_clients(self):
        selector = EnergyAwareSelector(2, epsilon=0.5, seed=1)
        clients = [FakeClient(f"c{i}") for i in range(6)]
        for i in range(6):
            selector.observe(f"c{i}", float(i))
        seen = set()
        for round_index in range(60):
            seen.update(c.client_id for c in selector.select(clients, round_index))
        assert seen == {f"c{i}" for i in range(6)}  # nobody starves

    def test_selection_size(self):
        selector = EnergyAwareSelector(3, epsilon=0.3, seed=0)
        clients = [FakeClient(f"c{i}") for i in range(8)]
        assert len(selector.select(clients, 0)) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyAwareSelector(0)
        with pytest.raises(ConfigurationError):
            EnergyAwareSelector(2, epsilon=1.5)
        with pytest.raises(ConfigurationError):
            EnergyAwareSelector(2).observe("c", -1.0)


def _make_clients(n):
    task = FLTaskSpec(
        workload=build_tiny_workload(),
        batch_size=8,
        epochs=2,
        minibatches={"tiny": 6},
        rounds=10,
    )
    clients = []
    for i in range(n):
        device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=i)
        clients.append(
            FederatedClient(f"client-{i}", PerformantController(device), task)
        )
    return clients


class TestDropout:
    def test_no_dropout_by_default(self):
        server = FederatedServer(
            _make_clients(3), deadline_schedule=StaticDeadlines(3.0), seed=0
        )
        record = server.run_round(0, 3)
        assert record.dropped == []
        assert len(record.reports) == 3

    def test_dropout_removes_participants(self):
        server = FederatedServer(
            _make_clients(4),
            deadline_schedule=StaticDeadlines(3.0),
            dropout_rate=0.5,
            seed=1,
        )
        history = server.run(6)
        dropped = sum(len(r.dropped) for r in history)
        delivered = sum(len(r.reports) for r in history)
        assert dropped > 0
        assert dropped + delivered == 4 * 6

    def test_dropout_rate_validated(self):
        with pytest.raises(ConfigurationError):
            FederatedServer(_make_clients(1), dropout_rate=1.0)

    def test_energy_selector_integrates_with_server(self):
        selector = EnergyAwareSelector(2, epsilon=0.0, seed=0)
        server = FederatedServer(
            _make_clients(4),
            selector=selector,
            deadline_schedule=StaticDeadlines(3.0),
            seed=0,
        )
        server.run(3)
        # the server fed round energies back into the selector
        assert any(
            selector.estimated_energy(f"client-{i}") > 0 for i in range(4)
        )
