"""Unit tests for the hierarchical (edge) aggregation layer."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.federated.aggregation import FedAvg, TrimmedMeanAggregator
from repro.federated.hierarchy import (
    HierarchySpec,
    aggregate_probe,
    combine_hierarchical,
    edge_assignment,
)
from repro.obs import runtime as obs


class TestHierarchySpec:
    def test_edge_of_is_modulo(self):
        spec = HierarchySpec(n_edges=4)
        assert [spec.edge_of(i) for i in range(9)] == [0, 1, 2, 3, 0, 1, 2, 3, 0]

    def test_single_edge_degenerates_to_flat_topology(self):
        spec = HierarchySpec(n_edges=1)
        assert all(spec.edge_of(i) == 0 for i in range(10))

    @pytest.mark.parametrize("n_edges", [0, -1])
    def test_rejects_non_positive_edges(self, n_edges):
        with pytest.raises(ConfigurationError, match="n_edges"):
            HierarchySpec(n_edges=n_edges)


class TestAggregateProbe:
    def test_weighted_mean(self):
        probe = aggregate_probe(FedAvg(), [0.0, 1.0], [1.0, 3.0])
        assert probe == pytest.approx(0.75)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="zero probes"):
            aggregate_probe(FedAvg(), [], [])

    def test_rejects_weight_count_mismatch(self):
        with pytest.raises(ConfigurationError, match="weights"):
            aggregate_probe(FedAvg(), [0.5, 0.6], [1.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            aggregate_probe(FedAvg(), [0.5, 0.6], [1.0, -1.0])

    def test_rejects_zero_weight_sum(self):
        with pytest.raises(ConfigurationError, match="positive sum"):
            aggregate_probe(FedAvg(), [0.5, 0.6], [0.0, 0.0])

    def test_non_fedavg_uses_the_array_path(self):
        # The trimmed mean drops the extremes; a weighted mean would not.
        probe = aggregate_probe(
            TrimmedMeanAggregator(trim=1),
            [0.0, 0.4, 0.6, 1.0],
            [1.0, 1.0, 1.0, 1.0],
        )
        assert probe == pytest.approx(0.5)


class TestCombineHierarchical:
    def kwargs(self):
        return dict(t=1.0, round_index=0, version=1)

    def test_rejects_ragged_inputs(self):
        with pytest.raises(ConfigurationError, match="parallel"):
            combine_hierarchical(
                FedAvg(),
                HierarchySpec(n_edges=2),
                [0.5, 0.6],
                [1.0, 1.0],
                [0],
                **self.kwargs(),
            )

    def test_single_edge_matches_flat_mean(self):
        progresses, weights = [0.2, 0.5, 0.9], [1.0, 2.0, 3.0]
        combined = combine_hierarchical(
            FedAvg(),
            HierarchySpec(n_edges=1),
            progresses,
            weights,
            [0, 0, 0],
            **self.kwargs(),
        )
        assert combined == aggregate_probe(FedAvg(), progresses, weights)

    def test_two_stage_mean_is_the_reweighted_fold(self):
        # edge0: clients (0.2, w=1), (0.8, w=3); edge1: (0.6, w=2)
        combined = combine_hierarchical(
            FedAvg(),
            HierarchySpec(n_edges=2),
            [0.2, 0.8, 0.6],
            [1.0, 3.0, 2.0],
            [0, 0, 1],
            **self.kwargs(),
        )
        edge0 = (1.0 * 0.2 + 3.0 * 0.8) / 4.0
        expected = (4.0 * edge0 + 2.0 * 0.6) / 6.0
        assert combined == pytest.approx(expected)

    def test_two_stage_equals_flat_up_to_association(self):
        """With edge weight = summed cohort weight, the two-stage mean is
        algebraically the flat weighted mean; only the float association
        order differs (the bit-level divergence the differential suite
        pins down on real fleet numbers)."""
        progresses = [0.1, 0.27, 0.33, 0.9]
        weights = [1.0, 2.5, 0.5, 4.0]
        flat = aggregate_probe(FedAvg(), progresses, weights)
        edged = combine_hierarchical(
            FedAvg(),
            HierarchySpec(n_edges=2),
            progresses,
            weights,
            [0, 0, 0, 1],
            **self.kwargs(),
        )
        assert math.isclose(flat, edged, rel_tol=1e-12)

    def test_emits_edge_events_and_counters(self):
        with obs.session(deterministic=True) as session:
            combine_hierarchical(
                FedAvg(),
                HierarchySpec(n_edges=3),
                [0.2, 0.8, 0.6],
                [1.0, 3.0, 2.0],
                [2, 0, 2],
                **self.kwargs(),
            )
        kinds = [e.kind for e in session.log]
        assert kinds == [
            "hierarchy.edge_aggregate",
            "hierarchy.edge_aggregate",
            "hierarchy.aggregate",
        ]
        # Edges emit in ascending edge id with their cohort sizes.
        first, second, closing = list(session.log)
        assert first.payload["edge"] == 0
        assert first.payload["contributors"] == 1
        assert second.payload["edge"] == 2
        assert second.payload["contributors"] == 2
        assert closing.payload["edges"] == 2
        assert closing.payload["contributors"] == 3
        assert closing.payload["version"] == 1
        assert session.metrics.counters["hierarchy.aggregations"] == 1
        assert session.metrics.counters["hierarchy.edge_aggregations"] == 2

    def test_silent_when_obs_disabled(self):
        combined = combine_hierarchical(
            FedAvg(),
            HierarchySpec(n_edges=2),
            [0.2, 0.8],
            [1.0, 1.0],
            [0, 1],
            **self.kwargs(),
        )
        assert 0.2 <= combined <= 0.8


class TestEdgeAssignment:
    def test_none_hierarchy_is_flat(self):
        assert edge_assignment(None, [0, 1, 2]) is None

    def test_maps_indices_through_edge_of(self):
        spec = HierarchySpec(n_edges=3)
        assert edge_assignment(spec, [0, 4, 7, 9]) == [0, 1, 1, 0]
