"""Hypothesis property suite for the structured-array event queue.

The vectorized engine's async drain rests on one claim:
:func:`repro.federated.eventqueue.resolve_pop_order` — a batch argsort
plus tie-run resolution — always reproduces the exact pop sequence of
the legacy per-event heap, including every tie-break (initial launches
beat relaunches, initials order by client rank, relaunches by their
parent's pop position, and a child is never poppable before its parent).
Rather than trust the derivation, this suite drives both against each
other on adversarially tie-heavy random event batches, with
:func:`reference_pop_order` as the literal heapq oracle.
"""

import heapq
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated.aggregation import FedAvg
from repro.federated.async_engine import staleness_weight
from repro.federated.eventqueue import (
    async_arrival_times,
    reference_pop_order,
    resolve_pop_order,
)
from repro.federated.hierarchy import aggregate_probe

# -- strategies --------------------------------------------------------------

#: Per-client event *increments* on a tiny integer grid: cumulative sums
#: give nondecreasing per-client arrival chains (the shape real traces
#: have), and the small grid makes cross-client ties the norm, not the
#: exception — zero increments even create intra-client ties.
increments = st.lists(
    st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=6),
    min_size=1,
    max_size=8,
)


def arrays_from_increments(chains):
    """(at, offsets) from per-client increment lists."""
    offsets = np.zeros(len(chains) + 1, dtype=np.int64)
    ats = []
    for i, chain in enumerate(chains):
        offsets[i + 1] = offsets[i] + len(chain)
        ats.extend(np.cumsum(np.asarray(chain, dtype=float)).tolist())
    return np.asarray(ats, dtype=float), offsets


class _Arrays:
    """The minimal duck-typed FleetTraceArrays async_arrival_times reads."""

    def __init__(self, elapsed, upload, offsets):
        self.elapsed = np.asarray(elapsed, dtype=float)
        self.upload = np.asarray(upload, dtype=float)
        self.offsets = np.asarray(offsets, dtype=np.int64)

    @property
    def n_events(self):
        return int(self.offsets[-1])

    @property
    def n_clients(self):
        return len(self.offsets) - 1

    @property
    def lengths(self):
        return np.diff(self.offsets)


# -- drain order == heapq reference ------------------------------------------


class TestPopOrderOracle:
    @settings(max_examples=300, deadline=None)
    @given(increments)
    def test_matches_heapq_reference(self, chains):
        at, offsets = arrays_from_increments(chains)
        resolved = resolve_pop_order(at, offsets)
        assert resolved.tolist() == reference_pop_order(at, offsets)

    @settings(max_examples=300, deadline=None)
    @given(increments)
    def test_is_a_permutation(self, chains):
        at, offsets = arrays_from_increments(chains)
        resolved = resolve_pop_order(at, offsets)
        assert sorted(resolved.tolist()) == list(range(int(offsets[-1])))

    @settings(max_examples=200, deadline=None)
    @given(increments)
    def test_respects_parent_before_child(self, chains):
        """A client's events drain in local-round order, always."""
        at, offsets = arrays_from_increments(chains)
        pos = np.empty(int(offsets[-1]), dtype=np.int64)
        pos[resolve_pop_order(at, offsets)] = np.arange(int(offsets[-1]))
        for i in range(len(chains)):
            client_positions = pos[int(offsets[i]) : int(offsets[i + 1])]
            assert client_positions.tolist() == sorted(client_positions.tolist())

    @settings(max_examples=200, deadline=None)
    @given(increments)
    def test_pop_times_are_nondecreasing(self, chains):
        at, offsets = arrays_from_increments(chains)
        popped = at[resolve_pop_order(at, offsets)]
        assert np.all(np.diff(popped) >= 0)

    def test_all_ties_drain_in_client_order(self):
        """The fully degenerate batch: every event at t=0."""
        chains = [[0, 0, 0], [0, 0], [0, 0, 0, 0]]
        at, offsets = arrays_from_increments(chains)
        resolved = resolve_pop_order(at, offsets)
        assert resolved.tolist() == reference_pop_order(at, offsets)
        # Initial launches (flat 0, 3, 5) pop first, in client order.
        assert resolved.tolist()[:3] == [0, 3, 5]

    def test_empty_clients_are_skipped(self):
        chains = [[], [1, 1], [], [1]]
        at, offsets = arrays_from_increments(chains)
        assert resolve_pop_order(at, offsets).tolist() == reference_pop_order(
            at, offsets
        )


# -- arrival-time chaining ---------------------------------------------------


class TestArrivalTimes:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.floats(0.0, 100.0, allow_nan=False),
                    st.floats(0.0, 100.0, allow_nan=False),
                ),
                min_size=0,
                max_size=6,
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_matches_sequential_chaining(self, per_client):
        """at[k] = ((at[k-1] + elapsed_k) + upload_k), bit-exact."""
        offsets = np.zeros(len(per_client) + 1, dtype=np.int64)
        elapsed, upload = [], []
        expected = []
        for i, rounds in enumerate(per_client):
            offsets[i + 1] = offsets[i] + len(rounds)
            t = 0.0
            for e, u in rounds:
                elapsed.append(e)
                upload.append(u)
                t = (t + e) + u
                expected.append(t)
        arrays = _Arrays(elapsed, upload, offsets)
        chained = async_arrival_times(arrays)
        assert chained.tolist() == expected  # == : bitwise, not approx


# -- staleness-discount invariants -------------------------------------------


class TestStalenessWeightInvariants:
    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(0.0, 8.0, allow_nan=False),
    )
    def test_bounded_and_fresh_is_full(self, staleness, exponent):
        w = staleness_weight(staleness, exponent)
        assert 0.0 < w <= 1.0
        assert staleness_weight(0, exponent) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(st.floats(0.01, 8.0, allow_nan=False))
    def test_monotone_in_staleness(self, exponent):
        weights = [staleness_weight(s, exponent) for s in range(20)]
        assert weights == sorted(weights, reverse=True)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_zero_exponent_disables_discount(self, staleness):
        assert staleness_weight(staleness, 0.0) == 1.0


class TestAggregateProbeInvariants:
    pairs = st.lists(
        st.tuples(
            st.floats(0.0, 1.0, allow_nan=False),
            st.floats(0.001, 1000.0, allow_nan=False),
        ),
        min_size=1,
        max_size=12,
    )

    @settings(max_examples=200, deadline=None)
    @given(pairs)
    def test_scalar_fast_path_matches_array_aggregator(self, pairs):
        """The FedAvg scalar replication is bit-identical to the real
        array path the legacy commit uses."""
        progresses = [p for p, _ in pairs]
        weights = [w for _, w in pairs]
        probe = aggregate_probe(FedAvg(), progresses, weights)
        updates = [[np.asarray([p], dtype=float)] for p in progresses]
        combined = FedAvg().aggregate(updates, list(weights))
        assert probe == float(combined[0][0])  # bitwise

    @settings(max_examples=200, deadline=None)
    @given(pairs, st.randoms(use_true_random=False))
    def test_permutation_invariant_up_to_rounding(self, pairs, rnd):
        """Client order must not matter beyond float associativity."""
        progresses = [p for p, _ in pairs]
        weights = [w for _, w in pairs]
        probe = aggregate_probe(FedAvg(), progresses, weights)
        shuffled = list(pairs)
        rnd.shuffle(shuffled)
        permuted = aggregate_probe(
            FedAvg(), [p for p, _ in shuffled], [w for _, w in shuffled]
        )
        assert math.isclose(probe, permuted, rel_tol=1e-9, abs_tol=1e-12)
        # And the probe is a convex combination of the progresses.
        assert min(progresses) - 1e-9 <= probe <= max(progresses) + 1e-9


# -- cross-check: the oracle itself ------------------------------------------


class TestReferenceOracle:
    def test_reference_is_a_real_heap_drain(self):
        """Spot-check the oracle against a hand-simulated drain."""
        #              client0: 2@t2,t4   client1: 1@t2   client2: 2@t1,t3
        chains = [[2, 2], [2], [1, 2]]
        at, offsets = arrays_from_increments(chains)
        heap, counter = [], 0
        for i in range(3):
            if offsets[i] != offsets[i + 1]:
                heapq.heappush(heap, (at[offsets[i]], counter, int(offsets[i])))
                counter += 1
        drained = []
        while heap:
            _, _, flat = heapq.heappop(heap)
            drained.append(flat)
            client = int(np.searchsorted(offsets, flat, side="right")) - 1
            if flat + 1 < int(offsets[client + 1]):
                heapq.heappush(heap, (at[flat + 1], counter, flat + 1))
                counter += 1
        assert reference_pop_order(at, offsets) == drained
        assert resolve_pop_order(at, offsets).tolist() == drained
