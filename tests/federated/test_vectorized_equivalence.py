"""Differential tests: vectorized engine == legacy per-event loop, byte for byte.

The contract that let the vectorized engine become the default: for every
mode, selector, knob, chaos overlay and hierarchy topology, composing the
same prepared traces through ``engine="vectorized"`` and
``engine="legacy"`` must produce byte-identical result dictionaries,
fleet summaries, *and* deterministic observability traces.  Anything the
legacy loop can express, the vectorized path must reproduce exactly —
which is why the legacy loop is retained at all.
"""

import dataclasses
import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.federated.aggregation import FedAvg
from repro.federated.async_engine import AsyncFederationEngine
from repro.federated.hierarchy import HierarchySpec
from repro.federated.selection import EnergyAwareSelector, RandomSelector
from repro.federated.transport import LinkModel
from repro.obs import runtime as obs
from repro.servertune.controllers import (
    ServerTuneSpec,
    make_server_controller,
    normalize_servertune,
)
from repro.sim.fleet import FleetSpec, compose_fleet, fleet_summary, prepare_fleet

#: Small but heterogeneous: 2 devices x 3 tasks x 2 controllers across 6
#: archetypes, enough clients for selection/cutoff/staleness structure.
BASE = dict(
    n_clients=24,
    rounds=3,
    controllers=("performant", "linear_pace"),
    archetypes=6,
    deadline_ratio=2.0,
)


@pytest.fixture(scope="module")
def trace_cache():
    """Prepared traces per spec key, shared across the differential matrix."""
    cache = {}

    def prepare(spec):
        key = json.dumps(dataclasses.asdict(spec), sort_keys=True, default=str)
        if key not in cache:
            cache[key] = prepare_fleet(spec)
        return cache[key]

    return prepare


def compose_with(spec, clients, engine_kind, **kwargs):
    """One composition under a deterministic obs session; returns
    (result, summary json, result-dict json, trace lines)."""
    target = spec.effective_participants()
    if spec.mode == "semisync":
        selection_size = min(
            spec.n_clients, math.ceil(target * spec.over_selection)
        )
    else:
        selection_size = target
    tune = normalize_servertune(spec.servertune)
    sized = selection_size < spec.n_clients or tune is not None
    selector = None
    if spec.selector == "random" and sized:
        selector = RandomSelector(selection_size, seed=spec.seed)
    elif spec.selector == "energy" and sized:
        selector = EnergyAwareSelector(selection_size, seed=spec.seed)
    engine = AsyncFederationEngine(
        [dataclasses.replace(c, records=list(c.records)) for c in clients],
        mode=spec.mode,
        link=LinkModel(),
        selector=selector,
        aggregator=FedAvg(),
        target_reports=target if spec.mode == "semisync" else None,
        buffer_size=spec.buffer_size,
        staleness_exponent=spec.staleness_exponent,
        max_staleness=spec.max_staleness,
        controller=None if tune is None else make_server_controller(tune),
        engine=engine_kind,
        **kwargs,
    )
    with obs.session(deterministic=True) as session:
        result = engine.run(spec.rounds)
        trace = [
            json.dumps(e.to_dict(), sort_keys=True) for e in session.log
        ]
    return (
        result,
        json.dumps(fleet_summary(spec, result), sort_keys=True),
        json.dumps(result.to_dict(), sort_keys=True),
        trace,
    )


def assert_identical(spec, clients, **kwargs):
    _, s_leg, d_leg, t_leg = compose_with(spec, clients, "legacy", **kwargs)
    _, s_vec, d_vec, t_vec = compose_with(spec, clients, "vectorized", **kwargs)
    assert s_leg == s_vec
    assert d_leg == d_vec
    assert t_leg == t_vec


SCENARIOS = {
    "sync": dict(BASE, mode="sync", seed=11),
    "semisync": dict(BASE, mode="semisync", seed=11),
    "async": dict(BASE, mode="async", seed=11),
    "semisync-overselect": dict(
        BASE, mode="semisync", participants=8, over_selection=1.5, seed=3
    ),
    "semisync-energy-selector": dict(
        BASE, mode="semisync", participants=8, selector="energy", seed=4
    ),
    "sync-selection": dict(BASE, mode="sync", participants=10, seed=5),
    "async-small-buffer": dict(BASE, mode="async", buffer_size=4, seed=6),
    "async-unit-buffer": dict(BASE, mode="async", buffer_size=1, seed=6),
    "async-oversized-buffer": dict(
        BASE, mode="async", buffer_size=128, seed=6
    ),
    "async-max-staleness": dict(
        BASE, mode="async", max_staleness=1, buffer_size=4, seed=9
    ),
    "sync-chaos": dict(
        BASE, mode="sync", chaos_fraction=0.5, chaos_seed=7, seed=5
    ),
    "semisync-chaos": dict(
        BASE,
        mode="semisync",
        participants=8,
        chaos_fraction=0.5,
        chaos_seed=7,
        seed=5,
    ),
    "async-chaos": dict(
        BASE,
        mode="async",
        chaos_fraction=0.5,
        chaos_seed=7,
        buffer_size=4,
        seed=5,
    ),
}

TUNED = {
    "sync-tuned": dict(
        BASE, mode="sync", servertune=ServerTuneSpec(controller="fedgpo"), seed=9
    ),
    "semisync-tuned": dict(
        BASE,
        mode="semisync",
        participants=8,
        servertune=ServerTuneSpec(controller="fedgpo"),
        seed=9,
    ),
    "async-tuned": dict(
        BASE,
        mode="async",
        buffer_size=4,
        servertune=ServerTuneSpec(controller="fedgpo"),
        seed=9,
    ),
    "sync-halting": dict(
        BASE,
        mode="sync",
        rounds=8,
        servertune=ServerTuneSpec(controller="fedtune", patience=1),
        seed=2,
    ),
    "async-halting": dict(
        BASE,
        mode="async",
        rounds=8,
        buffer_size=4,
        servertune=ServerTuneSpec(controller="fedtune", patience=1),
        seed=2,
    ),
}


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_static_scenarios(self, name, trace_cache):
        spec = FleetSpec(**SCENARIOS[name])
        assert_identical(spec, trace_cache(spec))

    @pytest.mark.parametrize("name", sorted(TUNED))
    def test_tuned_scenarios(self, name, trace_cache):
        """Adaptive knobs (participation, patience, buffer rescale, halt)
        drive the legacy control paths the vector engine must mirror."""
        spec = FleetSpec(**TUNED[name])
        assert_identical(spec, trace_cache(spec))

    @pytest.mark.parametrize("mode", ["sync", "semisync", "async"])
    def test_hierarchy_scenarios(self, mode, trace_cache):
        """legacy+hierarchy == vectorized+hierarchy (both call
        combine_hierarchical; the engines must feed it identically)."""
        spec = FleetSpec(**dict(BASE, mode=mode, seed=13))
        assert_identical(
            spec, trace_cache(spec), hierarchy=HierarchySpec(n_edges=4)
        )


class TestComposeFleetEquivalence:
    """The orchestration-layer wrapper honors the same contract."""

    @pytest.mark.parametrize("mode", ["sync", "semisync", "async"])
    def test_compose_fleet_engines_agree(self, mode, trace_cache):
        spec = FleetSpec(**dict(BASE, mode=mode, seed=21))
        clients = trace_cache(spec)
        legacy = compose_fleet(spec, clients, engine="legacy")
        vectorized = compose_fleet(spec, clients)
        assert json.dumps(legacy.to_dict(), sort_keys=True) == json.dumps(
            vectorized.to_dict(), sort_keys=True
        )

    def test_hierarchical_spec_through_compose_fleet(self, trace_cache):
        spec = FleetSpec(**dict(BASE, mode="async", seed=21, edges=3))
        clients = trace_cache(spec)
        legacy = compose_fleet(spec, clients, engine="legacy")
        vectorized = compose_fleet(spec, clients)
        assert legacy.to_dict() == vectorized.to_dict()
        summary = fleet_summary(spec, vectorized)
        assert summary["edges"] == 3

    def test_hierarchy_changes_the_probe(self, trace_cache):
        """Hierarchy is a different mean — not a silent no-op."""
        flat_spec = FleetSpec(**dict(BASE, mode="sync", seed=21))
        edge_spec = FleetSpec(**dict(BASE, mode="sync", seed=21, edges=3))
        clients = trace_cache(flat_spec)
        flat = compose_fleet(flat_spec, clients)
        edged = compose_fleet(edge_spec, clients)
        flat_probes = [r.model_probe for r in flat.rounds]
        edge_probes = [r.model_probe for r in edged.rounds]
        assert flat_probes != edge_probes


class TestStatsDetail:
    """detail="stats" carries the same scorecard without report objects."""

    @pytest.mark.parametrize("mode", ["sync", "semisync", "async"])
    def test_stats_summary_matches_reports(self, mode, trace_cache):
        spec = FleetSpec(**dict(BASE, mode=mode, seed=17))
        clients = trace_cache(spec)
        _, s_rep, _, t_rep = compose_with(spec, clients, "vectorized")
        result, s_st, _, t_st = compose_with(
            spec, clients, "vectorized", detail="stats"
        )
        assert s_rep == s_st
        assert t_rep == t_st  # emission is independent of materialization
        assert all(not r.reports for r in result.rounds)
        assert all(r.stats is not None for r in result.rounds)

    def test_stats_requires_vectorized_engine(self):
        spec = FleetSpec(**dict(BASE, mode="sync", seed=17))
        clients = prepare_fleet(spec)
        with pytest.raises(ConfigurationError, match="vectorized"):
            compose_fleet(spec, clients, engine="legacy", detail="stats")

    def test_stats_round_trip_through_to_dict(self, trace_cache):
        spec = FleetSpec(**dict(BASE, mode="async", seed=17))
        result = compose_fleet(
            spec, trace_cache(spec), detail="stats"
        )
        payload = result.to_dict()
        assert all("stats" in rnd for rnd in payload["rounds"])


class TestShardedCompose:
    """Sharding the trace-column build never changes a byte."""

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_serial_equals_sharded(self, mode, trace_cache):
        spec = FleetSpec(
            **dict(BASE, mode=mode, seed=23, chaos_fraction=0.4, chaos_seed=3)
        )
        clients = trace_cache(spec)
        serial = compose_fleet(spec, clients)
        for shards in (1, 2, 5):
            sharded = compose_fleet(spec, clients, shards=shards)
            assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
                sharded.to_dict(), sort_keys=True
            )
