"""Regenerate the ``ext_fleet`` golden artifacts.

Usage (from the repository root):

    PYTHONPATH=src:. python tests/federated/golden/regen.py

Overwrites ``ext_fleet_summary.txt`` and ``ext_fleet_trace.jsonl`` next
to this script with a fresh run of the pinned configuration (see
``tests/federated/test_fleet_golden.py`` for the parameters).  Review the
diff before committing — the whole point of the goldens is that drift is
a deliberate act.
"""

from tests.federated.test_fleet_golden import GOLDEN_DIR, produce_artifacts

if __name__ == "__main__":
    summary = produce_artifacts(GOLDEN_DIR / "ext_fleet_trace.jsonl")
    (GOLDEN_DIR / "ext_fleet_summary.txt").write_text(summary)
    print(f"regenerated goldens under {GOLDEN_DIR}")
