"""Unit tests for the fleet-scale federation engine."""

import pytest

from repro.errors import ConfigurationError
from repro.core.records import RoundRecord
from repro.faults.schedule import FaultSpec
from repro.federated.aggregation import TrimmedMeanAggregator
from repro.federated.async_engine import (
    FLEET_MODES,
    AsyncFederationEngine,
    FleetClient,
    staleness_weight,
)
from repro.federated.selection import RandomSelector
from repro.federated.transport import LinkModel

#: A deterministic link: transfer time is purely size / bandwidth.
FIXED_LINK = dict(bandwidth_mbps=10.0, variability=0.0, latency=0.0)


def make_record(round_index, elapsed, *, energy=10.0, missed=False, phase="exploit"):
    return RoundRecord(
        round_index=round_index,
        phase=phase,
        deadline=elapsed * 2,
        jobs=4,
        elapsed=elapsed,
        energy=energy,
        missed=missed,
    )


def make_client(index, *, elapsed=5.0, rounds=4, stalls=(), **record_kwargs):
    return FleetClient(
        client_id=f"client-{index:04d}",
        index=index,
        device="agx",
        task="vit",
        controller="bofl",
        trace_seed=index,
        n_samples=100,
        model_size_mbit=10.0,
        stall_windows=tuple(stalls),
        upload_seed=index,
        records=[make_record(r, elapsed, **record_kwargs) for r in range(rounds)],
    )


def make_fleet(n, *, spread=0.0, **kwargs):
    """``spread`` staggers per-client elapsed so arrival order is knowable."""
    return [make_client(i, elapsed=5.0 + spread * i, **kwargs) for i in range(n)]


class TestStalenessWeight:
    def test_fresh_report_keeps_full_weight(self):
        assert staleness_weight(0, 0.5) == 1.0

    def test_discount_decreases_with_staleness(self):
        weights = [staleness_weight(s, 0.5) for s in range(5)]
        assert weights == sorted(weights, reverse=True)
        assert weights[3] == pytest.approx(0.5)  # (1+3)^-0.5

    def test_zero_exponent_disables_discount(self):
        assert all(staleness_weight(s, 0.0) == 1.0 for s in range(10))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            staleness_weight(-1, 0.5)
        with pytest.raises(ConfigurationError):
            staleness_weight(0, -0.5)


class TestEngineValidation:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigurationError, match="at least one client"):
            AsyncFederationEngine([])

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="unknown fleet mode"):
            AsyncFederationEngine(make_fleet(2), mode="firehose")

    def test_rejects_duplicate_client_ids(self):
        clients = [make_client(0), make_client(0)]
        with pytest.raises(ConfigurationError, match="unique"):
            AsyncFederationEngine(clients)

    def test_rejects_bad_knobs(self):
        clients = make_fleet(2)
        with pytest.raises(ConfigurationError):
            AsyncFederationEngine(clients, buffer_size=0)
        with pytest.raises(ConfigurationError):
            AsyncFederationEngine(clients, staleness_exponent=-0.1)
        with pytest.raises(ConfigurationError):
            AsyncFederationEngine(clients, max_staleness=-1)
        with pytest.raises(ConfigurationError):
            AsyncFederationEngine(clients, target_reports=0)
        with pytest.raises(ConfigurationError):
            AsyncFederationEngine(clients).run(0)
        assert set(FLEET_MODES) == {"sync", "semisync", "async"}


class TestSyncMode:
    def test_round_latency_is_the_straggler_tail(self):
        clients = make_fleet(4, spread=1.0, rounds=2)
        engine = AsyncFederationEngine(clients, link=LinkModel(**FIXED_LINK))
        result = engine.run(2)
        assert len(result.rounds) == 2
        # Slowest client: elapsed 8.0 + upload 1.0 -> the round's latency.
        assert result.rounds[0].latency == pytest.approx(9.0)
        assert result.rounds[0].participants == [c.client_id for c in clients]
        assert all(r.aggregated for r in result.rounds)
        assert result.aggregations == 2

    def test_all_energy_is_claimed(self):
        clients = make_fleet(3, rounds=2)
        result = AsyncFederationEngine(
            clients, link=LinkModel(**FIXED_LINK)
        ).run(2)
        assert result.total_energy == pytest.approx(3 * 2 * 10.0)
        assert result.unclaimed_energy == 0.0

    def test_missed_deadline_becomes_straggler_with_zero_weight(self):
        clients = [make_client(0), make_client(1, missed=True)]
        result = AsyncFederationEngine(
            clients, link=LinkModel(**FIXED_LINK)
        ).run(1)
        (rnd,) = result.rounds
        assert rnd.stragglers == ["client-0001"]
        straggler = next(r for r in rnd.reports if r.client_id == "client-0001")
        assert straggler.status == "straggler"
        assert straggler.weight == 0.0
        # Its energy still counts against the fleet.
        assert rnd.total_energy == pytest.approx(20.0)
        assert result.straggler_reports == 1

    def test_all_clients_straggle_still_closes_and_skips_commit(self):
        clients = make_fleet(3, missed=True)
        result = AsyncFederationEngine(
            clients, link=LinkModel(**FIXED_LINK)
        ).run(1)
        (rnd,) = result.rounds
        assert rnd.stragglers == [c.client_id for c in clients]
        assert not rnd.aggregated
        assert rnd.model_probe is None
        assert rnd.completed_at >= rnd.started_at
        assert result.aggregations == 0

    def test_dropout_round_has_no_upload_but_keeps_energy(self):
        clients = [make_client(0), make_client(1, phase="dropped")]
        result = AsyncFederationEngine(
            clients, link=LinkModel(**FIXED_LINK)
        ).run(1)
        (rnd,) = result.rounds
        assert rnd.dropped == ["client-0001"]
        dropped = next(r for r in rnd.reports if r.client_id == "client-0001")
        assert dropped.upload == 0.0
        assert dropped.energy == 10.0
        assert result.dropout_rounds == 1

    def test_transport_stall_delays_arrival(self):
        stall = FaultSpec(kind="transport_stall", start_round=0, rounds=1, magnitude=0.5)
        baseline = AsyncFederationEngine(
            [make_client(0)], link=LinkModel(**FIXED_LINK)
        ).run(1)
        stalled = AsyncFederationEngine(
            [make_client(0, stalls=[stall])], link=LinkModel(**FIXED_LINK)
        ).run(1)
        # magnitude x deadline = 0.5 x 10.0 = 5 s extra on the wire.
        delta = stalled.rounds[0].latency - baseline.rounds[0].latency
        assert delta == pytest.approx(5.0)

    def test_selector_narrows_participation(self):
        clients = make_fleet(6, rounds=3)
        engine = AsyncFederationEngine(
            clients,
            link=LinkModel(**FIXED_LINK),
            selector=RandomSelector(2, seed=0),
        )
        result = engine.run(3)
        for rnd in result.rounds:
            assert len(rnd.participants) == 2

    def test_pluggable_aggregator_is_exercised(self):
        clients = make_fleet(5)
        result = AsyncFederationEngine(
            clients,
            link=LinkModel(**FIXED_LINK),
            aggregator=TrimmedMeanAggregator(trim=1),
        ).run(1)
        assert result.rounds[0].aggregated
        assert 0.0 < result.rounds[0].model_probe <= 1.0


class TestSemiSyncMode:
    def test_cutoff_closes_at_target_th_arrival(self):
        clients = make_fleet(5, spread=2.0, rounds=1)
        engine = AsyncFederationEngine(
            clients,
            mode="semisync",
            link=LinkModel(**FIXED_LINK),
            target_reports=3,
        )
        result = engine.run(1)
        (rnd,) = result.rounds
        # 3rd fastest client: elapsed 9.0 + upload 1.0.
        assert rnd.completed_at == pytest.approx(10.0)
        assert len(rnd.buffered) == 3
        assert result.cutoff_reports == 2
        cut = [r for r in rnd.reports if r.status == "cutoff"]
        assert all(r.weight == 0.0 for r in cut)
        # Cut reports' energy was still burned by the fleet.
        assert rnd.total_energy == pytest.approx(50.0)

    def test_no_cutoff_when_target_not_exceeded(self):
        clients = make_fleet(3, spread=2.0, rounds=1)
        result = AsyncFederationEngine(
            clients,
            mode="semisync",
            link=LinkModel(**FIXED_LINK),
            target_reports=3,
        ).run(1)
        assert result.cutoff_reports == 0
        assert len(result.rounds[0].buffered) == 3


class TestAsyncMode:
    def test_buffer_flush_commits_versions(self):
        clients = make_fleet(4, rounds=4)
        engine = AsyncFederationEngine(
            clients,
            mode="async",
            link=LinkModel(**FIXED_LINK),
            buffer_size=4,
        )
        result = engine.run(4)
        # 16 aggregatable reports / buffer of 4 = 4 commits.
        assert result.aggregations == 4
        assert result.rounds[-1].model_version == 4
        assert result.unclaimed_energy == 0.0

    def test_trailing_partial_buffer_energy_is_unclaimed_not_lost(self):
        clients = make_fleet(3, rounds=2)
        result = AsyncFederationEngine(
            clients,
            mode="async",
            link=LinkModel(**FIXED_LINK),
            buffer_size=4,
        ).run(2)
        # 6 reports -> one flush of 4, two stranded in the buffer.
        assert result.aggregations == 1
        assert result.unclaimed_energy == pytest.approx(2 * 10.0)
        assert result.total_energy == pytest.approx(6 * 10.0)

    def test_energy_parity_with_sync_at_full_participation(self):
        sync = AsyncFederationEngine(
            make_fleet(4, spread=1.0), link=LinkModel(**FIXED_LINK)
        ).run(4)
        buffered = AsyncFederationEngine(
            make_fleet(4, spread=1.0),
            mode="async",
            link=LinkModel(**FIXED_LINK),
            buffer_size=4,
        ).run(4)
        assert buffered.total_energy == pytest.approx(sync.total_energy)

    def test_async_latency_beats_sync_on_heterogeneous_fleet(self):
        sync = AsyncFederationEngine(
            make_fleet(6, spread=5.0), link=LinkModel(**FIXED_LINK)
        ).run(4)
        buffered = AsyncFederationEngine(
            make_fleet(6, spread=5.0),
            mode="async",
            link=LinkModel(**FIXED_LINK),
            buffer_size=3,
        ).run(4)
        assert buffered.mean_round_latency < sync.mean_round_latency

    def test_staleness_accumulates_and_discounts_weight(self):
        # One fast client races ahead while a slow one trains once; by the
        # time the slow report lands several versions have committed.
        fast = make_client(0, elapsed=1.0, rounds=30)
        slow = make_client(1, elapsed=20.0, rounds=1)
        result = AsyncFederationEngine(
            [fast, slow],
            mode="async",
            link=LinkModel(**FIXED_LINK),
            buffer_size=2,
            staleness_exponent=0.5,
        ).run(30)
        slow_reports = [
            r
            for rnd in result.rounds
            for r in rnd.reports
            if r.client_id == "client-0001"
        ]
        assert slow_reports, "slow client's report never landed in a flush"
        report = slow_reports[0]
        assert report.staleness > 0
        expected = 100 * staleness_weight(report.staleness, 0.5)
        assert report.weight == pytest.approx(expected)
        assert result.mean_staleness > 0

    def test_max_staleness_drops_reports(self):
        fast = make_client(0, elapsed=1.0, rounds=30)
        slow = make_client(1, elapsed=20.0, rounds=1)
        result = AsyncFederationEngine(
            [fast, slow],
            mode="async",
            link=LinkModel(**FIXED_LINK),
            buffer_size=2,
            max_staleness=0,
        ).run(30)
        assert result.staleness_drops >= 1
        stale = [
            r
            for rnd in result.rounds
            for r in rnd.reports
            if r.status == "stale"
        ]
        assert all(r.weight == 0.0 for r in stale)

    def test_composition_is_deterministic(self):
        def compose():
            return AsyncFederationEngine(
                make_fleet(5, spread=1.5),
                mode="async",
                link=LinkModel(),  # variability on: private per-client RNGs
                buffer_size=3,
            ).run(3)

        assert compose().to_dict() == compose().to_dict()


class TestFleetRoundAccessors:
    def test_stragglers_and_total_energy(self):
        clients = [
            make_client(0, energy=3.0),
            make_client(1, energy=5.0, missed=True),
        ]
        result = AsyncFederationEngine(
            clients, link=LinkModel(**FIXED_LINK)
        ).run(1)
        (rnd,) = result.rounds
        assert rnd.total_energy == pytest.approx(8.0)
        assert rnd.stragglers == ["client-0001"]
        assert [r.client_id for r in rnd.buffered] == ["client-0000"]

    def test_to_dict_round_trips_the_report_fields(self):
        result = AsyncFederationEngine(
            make_fleet(2), link=LinkModel(**FIXED_LINK)
        ).run(1)
        payload = result.to_dict()
        assert payload["mode"] == "sync"
        assert payload["n_clients"] == 2
        (rnd,) = payload["rounds"]
        assert {r["client_id"] for r in rnd["reports"]} == {
            "client-0000",
            "client-0001",
        }
        assert all(r["status"] == "buffered" for r in rnd["reports"])
