"""Unit tests for the transport model and reporting-deadline adapter."""

import numpy as np
import pytest

from repro.baselines import PerformantController
from repro.core import BoFLController
from repro.errors import ConfigurationError
from repro.federated.reporting import ReportingDeadlineAdapter
from repro.federated.transport import (
    MODEL_SIZES_MBIT,
    BandwidthEstimator,
    LinkModel,
    training_deadline_from_reporting,
)
from repro.hardware import SimulatedDevice
from tests.conftest import build_tiny_spec, build_tiny_workload


class TestLinkModel:
    def test_paper_footnote7_arithmetic(self):
        # 51.2 Mb over 5 Mbps ~ 10.2 s (+ setup latency).
        link = LinkModel(bandwidth_mbps=5.0, variability=0.0, latency=0.0)
        rng = np.random.default_rng(0)
        assert link.transfer_time(MODEL_SIZES_MBIT["resnet50"], rng) == pytest.approx(
            10.24
        )

    def test_latency_added(self):
        link = LinkModel(bandwidth_mbps=10.0, variability=0.0, latency=0.5)
        rng = np.random.default_rng(0)
        assert link.transfer_time(10.0, rng) == pytest.approx(1.5)

    def test_variability_spreads_draws(self):
        link = LinkModel(bandwidth_mbps=5.0, variability=0.3)
        rng = np.random.default_rng(0)
        draws = [link.transfer_time(50.0, rng) for _ in range(50)]
        assert np.std(draws) > 0.3

    def test_variability_mean_is_unbiased_in_rate(self):
        # the lognormal factor has mean 1, so mean effective bandwidth ~ nominal
        link = LinkModel(bandwidth_mbps=5.0, variability=0.2, latency=0.0)
        rng = np.random.default_rng(1)
        rates = [50.0 / link.transfer_time(50.0, rng) for _ in range(3000)]
        assert np.mean(rates) == pytest.approx(5.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkModel(bandwidth_mbps=0.0)
        with pytest.raises(ConfigurationError):
            LinkModel(variability=-0.1)


class TestBandwidthEstimator:
    def test_converges_to_true_rate(self):
        estimator = BandwidthEstimator(initial_mbps=1.0, smoothing=0.5)
        for _ in range(20):
            estimator.observe_transfer(50.0, 10.0)  # 5 Mbps
        assert estimator.estimate_mbps == pytest.approx(5.0, rel=0.01)

    def test_safe_estimate_is_conservative(self):
        estimator = BandwidthEstimator(initial_mbps=5.0, conservatism=0.8)
        assert estimator.safe_mbps == pytest.approx(4.0)
        assert estimator.upload_time(40.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BandwidthEstimator(initial_mbps=0.0)
        estimator = BandwidthEstimator()
        with pytest.raises(ConfigurationError):
            estimator.observe_transfer(0.0, 1.0)

    def test_rejects_non_positive_duration(self):
        estimator = BandwidthEstimator()
        for duration in (0.0, -1.0):
            with pytest.raises(ConfigurationError):
                estimator.observe_transfer(50.0, duration)
        assert estimator.observations == 0

    def test_rejects_non_finite_duration(self):
        estimator = BandwidthEstimator()
        for duration in (float("inf"), float("nan")):
            with pytest.raises(ConfigurationError):
                estimator.observe_transfer(50.0, duration)
        assert estimator.observations == 0

    def test_tiny_duration_cannot_poison_the_estimate(self):
        # Regression: a timer glitch (duration ~ 0) used to inject an
        # astronomically large Mbps sample; the EWMA then never recovered
        # and upload_time collapsed toward zero forever.
        estimator = BandwidthEstimator(initial_mbps=5.0, smoothing=0.5)
        estimator.observe_transfer(50.0, 1e-300)
        assert np.isfinite(estimator.estimate_mbps)
        assert estimator.estimate_mbps <= 0.5 * (5.0 + BandwidthEstimator.MAX_MBPS)
        assert estimator.upload_time(50.0) > 0.0

    def test_stalled_transfer_clamps_to_positive_floor(self):
        estimator = BandwidthEstimator(initial_mbps=5.0, smoothing=1.0)
        estimator.observe_transfer(1e-6, 1e6)  # effectively zero Mbps
        assert estimator.estimate_mbps == pytest.approx(BandwidthEstimator.MIN_MBPS)
        assert estimator.safe_mbps > 0.0
        assert np.isfinite(estimator.upload_time(50.0))

    def test_clamped_observation_still_counts(self):
        estimator = BandwidthEstimator(smoothing=0.3)
        estimator.observe_transfer(50.0, 1e-300)
        estimator.observe_transfer(50.0, 10.0)
        assert estimator.observations == 2


class TestDeadlineConversion:
    def test_subtracts_predicted_upload(self):
        estimator = BandwidthEstimator(initial_mbps=5.0, conservatism=1.0)
        deadline = training_deadline_from_reporting(60.0, 50.0, estimator)
        assert deadline == pytest.approx(60.0 - 10.0)

    def test_floors_at_fraction_of_reporting_deadline(self):
        estimator = BandwidthEstimator(initial_mbps=0.1, conservatism=1.0)
        deadline = training_deadline_from_reporting(60.0, 500.0, estimator)
        assert deadline == pytest.approx(6.0)  # the 10% floor

    def test_explicit_minimum(self):
        estimator = BandwidthEstimator(initial_mbps=0.1, conservatism=1.0)
        deadline = training_deadline_from_reporting(
            60.0, 500.0, estimator, minimum=20.0
        )
        assert deadline == pytest.approx(20.0)


class TestDeadlineConversionEdgeCases:
    def test_near_zero_bandwidth_stays_finite_and_floored(self):
        estimator = BandwidthEstimator(initial_mbps=1e-9, conservatism=1.0)
        deadline = training_deadline_from_reporting(60.0, 50.0, estimator)
        assert np.isfinite(deadline)
        assert deadline == pytest.approx(6.0)  # the 10% floor

    def test_near_zero_bandwidth_link_draws_are_finite(self):
        link = LinkModel(bandwidth_mbps=1e-9, variability=0.5, latency=0.1)
        rng = np.random.default_rng(0)
        draws = [link.transfer_time(10.0, rng) for _ in range(20)]
        assert all(np.isfinite(d) and d > 0 for d in draws)

    def test_upload_exactly_consuming_the_deadline_hits_the_floor(self):
        # predicted upload == reporting deadline -> remaining budget is 0,
        # the conversion must still return the positive floor.
        estimator = BandwidthEstimator(initial_mbps=1.0, conservatism=1.0)
        deadline = training_deadline_from_reporting(50.0, 50.0, estimator)
        assert deadline == pytest.approx(5.0)

    def test_nonpositive_explicit_minimum_rejected(self):
        estimator = BandwidthEstimator(initial_mbps=5.0)
        with pytest.raises(ConfigurationError, match="minimum"):
            training_deadline_from_reporting(60.0, 50.0, estimator, minimum=0.0)

    def test_ewma_converges_from_above_and_below(self):
        for initial in (0.5, 50.0):
            estimator = BandwidthEstimator(initial_mbps=initial, smoothing=0.3)
            for _ in range(60):
                estimator.observe_transfer(50.0, 10.0)  # 5 Mbps truth
            assert estimator.estimate_mbps == pytest.approx(5.0, rel=0.01)

    def test_ewma_step_is_a_convex_blend(self):
        estimator = BandwidthEstimator(initial_mbps=4.0, smoothing=0.25)
        estimator.observe_transfer(80.0, 10.0)  # one 8 Mbps observation
        assert estimator.estimate_mbps == pytest.approx(0.75 * 4.0 + 0.25 * 8.0)

    def test_fixed_link_latency_exceeding_deadline_misses_reporting(self):
        # The handshake alone outlasts the reporting deadline: training still
        # gets its floored budget, but the round can never report in time.
        device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=0)
        adapter = ReportingDeadlineAdapter(
            PerformantController(device),
            model_size_mbit=1.0,
            link=LinkModel(bandwidth_mbps=100.0, variability=0.0, latency=1000.0),
            seed=3,
        )
        jobs = 40
        t_min = device.model.latency(device.space.max_configuration()) * jobs
        record = adapter.run_round(jobs, reporting_deadline=t_min * 3 + 5.0)
        assert not record.reported_in_time
        assert record.training_deadline > 0
        assert record.upload_time > record.reporting_deadline


class TestReportingDeadlineAdapter:
    JOBS = 40

    def _adapter(self, controller_cls=PerformantController, **kwargs):
        device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=0)
        controller = controller_cls(device)
        return ReportingDeadlineAdapter(
            controller,
            model_size_mbit=20.0,
            link=LinkModel(bandwidth_mbps=10.0, variability=0.05, latency=0.1),
            seed=1,
            **kwargs,
        ), device

    def test_round_reports_in_time_with_slack(self):
        adapter, device = self._adapter()
        t_min = device.model.latency(device.space.max_configuration()) * self.JOBS
        record = adapter.run_round(self.JOBS, reporting_deadline=t_min * 3 + 5.0)
        assert record.reported_in_time
        assert record.upload_time > 0
        assert record.training_deadline < record.reporting_deadline
        assert record.total_elapsed == pytest.approx(
            record.training.elapsed + record.upload_time
        )

    def test_estimator_learns_from_uploads(self):
        adapter, device = self._adapter()
        t_min = device.model.latency(device.space.max_configuration()) * self.JOBS
        before = adapter.estimator.observations
        for _ in range(5):
            adapter.run_round(self.JOBS, reporting_deadline=t_min * 3 + 5.0)
        assert adapter.estimator.observations == before + 5
        # estimate has converged near the true 10 Mbps link
        assert adapter.estimator.estimate_mbps == pytest.approx(10.0, rel=0.2)

    def test_composes_with_bofl(self, fast_config):
        device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=0)
        adapter = ReportingDeadlineAdapter(
            BoFLController(device, fast_config),
            model_size_mbit=20.0,
            link=LinkModel(bandwidth_mbps=10.0, variability=0.05),
            seed=2,
        )
        t_min = device.model.latency(device.space.max_configuration()) * self.JOBS
        records = [
            adapter.run_round(self.JOBS, reporting_deadline=t_min * 2.5 + 4.0)
            for _ in range(10)
        ]
        assert all(r.reported_in_time for r in records)
        assert all(not r.training.missed for r in records)

    def test_rejects_bad_model_size(self):
        device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=0)
        with pytest.raises(ConfigurationError):
            ReportingDeadlineAdapter(PerformantController(device), model_size_mbit=0.0)
