"""Tests for counters, gauges, histograms and timing spans."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import NULL_TIMER, Histogram, Metrics


class TestHistogram:
    def test_streaming_summary(self):
        h = Histogram()
        for value in (1.0, 3.0, 5.0):
            h.observe(value)
        assert h.count == 3
        assert h.total == 9.0
        assert h.mean == 3.0
        assert h.minimum == 1.0
        assert h.maximum == 5.0
        assert h.variance == pytest.approx(8.0 / 3.0)

    def test_empty_histogram_is_safe(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.variance == 0.0
        assert h.to_dict()["min"] == 0.0

    def test_to_dict_shape(self):
        h = Histogram()
        h.observe(2.0)
        assert h.to_dict() == {
            "count": 1, "total": 2.0, "mean": 2.0, "min": 2.0, "max": 2.0,
        }


class TestMetrics:
    def test_counters_accumulate(self):
        m = Metrics()
        m.count("rounds")
        m.count("rounds", 4)
        assert m.counter("rounds") == 5
        assert m.counter("never") == 0

    def test_negative_counter_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            Metrics().count("x", -1)

    def test_gauges_keep_latest_value(self):
        m = Metrics()
        m.gauge("phase", 1)
        m.gauge("phase", 2)
        assert m.gauges["phase"] == 2.0

    def test_observe_creates_histograms_on_first_use(self):
        m = Metrics()
        m.observe("energy", 10.0)
        m.observe("energy", 20.0)
        assert m.histograms["energy"].mean == 15.0

    def test_timer_span_feeds_histogram(self):
        m = Metrics()
        with m.timer("span") as span:
            pass
        assert span.elapsed >= 0.0
        assert m.histograms["span"].count == 1
        with m.timer("span"):
            pass
        assert m.histograms["span"].count == 2

    def test_snapshot_is_json_safe(self):
        import json

        m = Metrics()
        m.count("c")
        m.gauge("g", 1.5)
        m.observe("h", 2.0)
        snapshot = m.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_render_lists_every_metric(self):
        m = Metrics()
        assert m.render() == "(no metrics recorded)"
        m.count("c")
        m.gauge("g", 1.0)
        m.observe("h", 2.0)
        text = m.render()
        assert "c" in text and "g" in text and "n=1" in text


class TestNullTimer:
    def test_is_a_reusable_noop_span(self):
        with NULL_TIMER as span:
            assert span is NULL_TIMER
        assert NULL_TIMER.elapsed == 0.0
