"""Tests for the streaming columnar trace format and format dispatch."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import runtime as obs
from repro.obs.columnar import (
    COLUMNAR_FORMAT,
    COLUMNAR_VERSION,
    ColumnarTraceWriter,
    iter_columnar,
    iter_trace_events,
    read_trace_events,
    sniff_format,
    write_columnar,
)
from repro.obs.events import TRACE_FORMAT_VERSION, Event
from repro.obs.trace import render_view
from repro.sim.fleet import FleetSpec, compose_fleet, prepare_fleet


def make_events(n, kinds=("fleet.enqueue", "fleet.round", "mbo.step")):
    """A heterogeneous event stream with sparse, varied payloads."""
    events = []
    for i in range(n):
        kind = kinds[i % len(kinds)]
        payload = {"round": i // len(kinds), "seq": i}
        if kind == "fleet.enqueue":
            payload["client"] = f"client-{i:04d}"
            payload["staleness"] = i % 3
        elif kind == "mbo.step":
            payload["accepted"] = bool(i % 2)
        events.append(Event(kind=kind, t=float(i) * 0.5, payload=payload))
    return events


def dump_events(events):
    return [json.dumps(e.to_dict(), sort_keys=True) for e in events]


class TestRoundTrip:
    def test_events_survive_byte_exact(self, tmp_path):
        events = make_events(100)
        path = write_columnar(tmp_path / "trace.col", events, chunk_events=16)
        assert dump_events(iter_columnar(path)) == dump_events(events)

    @pytest.mark.parametrize("chunk_events", [1, 7, 100, 4096])
    def test_chunk_boundaries_are_invisible(self, tmp_path, chunk_events):
        events = make_events(100)
        path = write_columnar(
            tmp_path / "trace.col", events, chunk_events=chunk_events
        )
        assert dump_events(iter_columnar(path)) == dump_events(events)

    def test_empty_trace(self, tmp_path):
        path = write_columnar(tmp_path / "empty.col", [])
        assert read_trace_events(path) == []
        assert sniff_format(path) == "columnar"

    def test_writes_are_deterministic(self, tmp_path):
        events = make_events(50)
        a = write_columnar(tmp_path / "a.col", events, chunk_events=8)
        b = write_columnar(tmp_path / "b.col", events, chunk_events=8)
        assert a.read_bytes() == b.read_bytes()

    def test_columnar_is_smaller_than_jsonl(self, tmp_path):
        events = make_events(2000)
        jsonl = tmp_path / "trace.jsonl"
        jsonl.write_text("".join(line + "\n" for line in dump_events(events)))
        columnar = write_columnar(tmp_path / "trace.col", events)
        assert columnar.stat().st_size < jsonl.stat().st_size


class TestWriter:
    def test_header_is_written_eagerly(self, tmp_path):
        writer = ColumnarTraceWriter(tmp_path / "crash.col")
        try:
            header = json.loads(
                (tmp_path / "crash.col").read_text().splitlines()[0]
            )
        finally:
            writer.close()
        assert header == {
            "format": COLUMNAR_FORMAT,
            "version": COLUMNAR_VERSION,
            "trace_format_version": TRACE_FORMAT_VERSION,
        }

    def test_write_after_close_raises(self, tmp_path):
        writer = ColumnarTraceWriter(tmp_path / "t.col")
        writer.close()
        with pytest.raises(ConfigurationError, match="closed"):
            writer.write_event(Event(kind="fleet.round"))

    def test_close_is_idempotent_and_flushes_partial_chunk(self, tmp_path):
        events = make_events(5)
        writer = ColumnarTraceWriter(tmp_path / "t.col", chunk_events=100)
        for event in events:
            writer.write_event(event)
        writer.close()
        writer.close()
        assert writer.written == 5
        assert dump_events(iter_columnar(tmp_path / "t.col")) == dump_events(
            events
        )

    def test_rejects_non_positive_chunk_size(self, tmp_path):
        with pytest.raises(ConfigurationError, match="chunk_events"):
            ColumnarTraceWriter(tmp_path / "t.col", chunk_events=0)

    def test_works_as_live_event_sink(self, tmp_path):
        """The writer plugged into an obs session captures the identical
        deterministic stream the in-memory log holds, with O(1) retention."""
        spec = FleetSpec(n_clients=8, rounds=2, mode="async")
        clients = prepare_fleet(spec)
        path = tmp_path / "live.col"
        with ColumnarTraceWriter(path) as writer:
            with obs.session(
                deterministic=True, event_sink=writer.write_event
            ) as session:
                compose_fleet(spec, clients)
                expected = dump_events(session.log)
        assert dump_events(iter_columnar(path)) == expected


class TestFormatDispatch:
    def test_sniff_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "fleet.round", "t": 1.0}\n')
        assert sniff_format(path) == "jsonl"

    def test_sniff_empty_and_invalid_default_to_jsonl(self, tmp_path):
        empty = tmp_path / "empty"
        empty.write_text("")
        garbled = tmp_path / "garbled"
        garbled.write_text("not json\n")
        assert sniff_format(empty) == "jsonl"
        assert sniff_format(garbled) == "jsonl"

    def test_both_formats_stream_identical_events(self, tmp_path):
        events = make_events(60)
        jsonl = tmp_path / "t.jsonl"
        jsonl.write_text("".join(line + "\n" for line in dump_events(events)))
        columnar = write_columnar(tmp_path / "t.col", events, chunk_events=16)
        assert dump_events(iter_trace_events(jsonl)) == dump_events(
            iter_trace_events(columnar)
        )

    def test_iter_columnar_rejects_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "fleet.round", "t": 1.0}\n')
        with pytest.raises(ConfigurationError, match="columnar header"):
            list(iter_columnar(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            read_trace_events(tmp_path / "nope.col")

    def test_replayed_views_agree_across_formats(self, tmp_path):
        """`repro trace` views render identically from either container."""
        spec = FleetSpec(n_clients=8, rounds=2, mode="semisync")
        clients = prepare_fleet(spec)
        with obs.session(deterministic=True) as session:
            compose_fleet(spec, clients)
        jsonl = session.log.dump_jsonl(tmp_path / "t.jsonl")
        columnar = write_columnar(
            tmp_path / "t.col", list(session.log), chunk_events=32
        )
        for view in ("summary",):
            assert render_view(
                read_trace_events(jsonl), view
            ) == render_view(read_trace_events(columnar), view)


class TestValidation:
    def header(self):
        return json.dumps(
            {
                "format": COLUMNAR_FORMAT,
                "version": COLUMNAR_VERSION,
                "trace_format_version": TRACE_FORMAT_VERSION,
            }
        )

    def test_rejects_newer_container_version(self, tmp_path):
        path = tmp_path / "t.col"
        path.write_text(
            json.dumps(
                {
                    "format": COLUMNAR_FORMAT,
                    "version": COLUMNAR_VERSION + 1,
                    "trace_format_version": TRACE_FORMAT_VERSION,
                }
            )
            + "\n"
        )
        with pytest.raises(ConfigurationError, match="container version"):
            list(iter_columnar(path))

    def test_rejects_newer_schema_version(self, tmp_path):
        path = tmp_path / "t.col"
        path.write_text(
            json.dumps(
                {
                    "format": COLUMNAR_FORMAT,
                    "version": COLUMNAR_VERSION,
                    "trace_format_version": TRACE_FORMAT_VERSION + 1,
                }
            )
            + "\n"
        )
        with pytest.raises(ConfigurationError, match="trace format version"):
            list(iter_columnar(path))

    def test_rejects_chunk_length_mismatch(self, tmp_path):
        path = tmp_path / "t.col"
        chunk = {
            "chunk": 2,
            "kinds": ["fleet.round"],
            "kind": [0],
            "t": [1.0],
            "cols": {},
        }
        path.write_text(self.header() + "\n" + json.dumps(chunk) + "\n")
        with pytest.raises(ConfigurationError, match="declares 2 events"):
            list(iter_columnar(path))

    def test_rejects_column_row_out_of_bounds(self, tmp_path):
        path = tmp_path / "t.col"
        chunk = {
            "chunk": 1,
            "kinds": ["fleet.round"],
            "kind": [0],
            "t": [1.0],
            "cols": {"round": [[5], [1]]},
        }
        path.write_text(self.header() + "\n" + json.dumps(chunk) + "\n")
        with pytest.raises(ConfigurationError, match="outside the chunk"):
            list(iter_columnar(path))

    def test_rejects_ragged_column(self, tmp_path):
        path = tmp_path / "t.col"
        chunk = {
            "chunk": 1,
            "kinds": ["fleet.round"],
            "kind": [0],
            "t": [1.0],
            "cols": {"round": [[0], [1, 2]]},
        }
        path.write_text(self.header() + "\n" + json.dumps(chunk) + "\n")
        with pytest.raises(ConfigurationError, match="1 rows"):
            list(iter_columnar(path))

    def test_rejects_kind_code_out_of_bounds(self, tmp_path):
        path = tmp_path / "t.col"
        chunk = {
            "chunk": 1,
            "kinds": ["fleet.round"],
            "kind": [3],
            "t": [1.0],
            "cols": {},
        }
        path.write_text(self.header() + "\n" + json.dumps(chunk) + "\n")
        with pytest.raises(ConfigurationError, match="kind code"):
            list(iter_columnar(path))

    def test_jsonl_streaming_checks_schema_version(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(
                {
                    "kind": "trace.header",
                    "format_version": TRACE_FORMAT_VERSION + 1,
                }
            )
            + "\n"
        )
        with pytest.raises(ConfigurationError, match="trace format version"):
            list(iter_trace_events(path))
