"""Tests for the typed event records, the event log, and JSONL traces."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import (
    TRACE_FORMAT_VERSION,
    Event,
    EventLog,
    events_between,
    read_jsonl,
)


class TestEvent:
    def test_kind_must_be_non_empty(self):
        with pytest.raises(ConfigurationError):
            Event(kind="")

    def test_layer_is_the_kind_prefix(self):
        assert Event(kind="guardian.decision").layer == "guardian"
        assert Event(kind="plain").layer == "plain"

    def test_dict_round_trip(self):
        event = Event(kind="mbo.fit", t=12.5, payload={"seconds": 0.3, "n": 7})
        restored = Event.from_dict(event.to_dict())
        assert restored == event

    def test_from_dict_rejects_non_events(self):
        with pytest.raises(ConfigurationError):
            Event.from_dict({"t": 1.0})
        with pytest.raises(ConfigurationError):
            Event.from_dict("not a dict")


class TestEventLog:
    def test_emit_retains_and_counts(self):
        log = EventLog()
        log.emit("a.one", t=1.0, x=1)
        log.emit("a.one", t=2.0, x=2)
        log.emit("b.two")
        assert len(log) == 3
        assert log.emitted == 3
        assert log.counts_by_kind() == {"a.one": 2, "b.two": 1}

    def test_kind_filter(self):
        log = EventLog()
        log.emit("a.one", x=1)
        log.emit("b.two")
        [only] = log.events("a.one")
        assert only.payload == {"x": 1}
        assert len(log.events()) == 2

    def test_ring_capacity_bounds_memory_but_not_emitted(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert log.emitted == 10
        assert [e.payload["i"] for e in log] == [7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)

    def test_sink_streams_json_lines(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with path.open("w") as sink:
            log = EventLog(sink=sink)
            log.emit("a.one", t=1.5, x=1)
            log.emit("b.two")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"kind": "a.one", "t": 1.5, "x": 1}

    def test_clear_drops_retained_events(self):
        log = EventLog()
        log.emit("a.one")
        log.clear()
        assert len(log) == 0
        assert log.emitted == 1


class TestJsonlRoundTrip:
    def test_dump_and_read_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("campaign.start", t=0.0, device="agx", seed=3)
        log.emit("controller.round", t=10.0, round=0, energy=1.25)
        path = log.dump_jsonl(tmp_path / "trace.jsonl")
        events = read_jsonl(path)
        assert [e.kind for e in events] == ["campaign.start", "controller.round"]
        assert events[1].payload == {"round": 0, "energy": 1.25}
        assert events[1].t == 10.0

    def test_dump_writes_a_version_header(self, tmp_path):
        path = EventLog().dump_jsonl(tmp_path / "empty.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "trace.header"
        assert header["format_version"] == TRACE_FORMAT_VERSION

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            read_jsonl(tmp_path / "nope.jsonl")

    def test_malformed_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "ok", "t": 0.0}\nnot json\n')
        with pytest.raises(ConfigurationError, match=":2"):
            read_jsonl(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "list.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ConfigurationError, match="not an event object"):
            read_jsonl(path)

    def test_future_format_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": "trace.header", "format_version": 999}) + "\n"
        )
        with pytest.raises(ConfigurationError, match="format version"):
            read_jsonl(path)

    def test_headerless_trace_tolerated(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"kind": "a.one", "t": 1.0}\n\n{"kind": "b.two", "t": 2.0}\n')
        assert [e.kind for e in read_jsonl(path)] == ["a.one", "b.two"]


class TestEventsBetween:
    def _stream(self, kinds):
        return [Event(kind=k) for k in kinds]

    def test_brackets_split_into_segments(self):
        events = self._stream(
            ["noise", "start", "a", "end", "noise", "start", "b", "end"]
        )
        segments = events_between(events, "start", "end")
        assert [[e.kind for e in s] for s in segments] == [
            ["start", "a", "end"],
            ["start", "b", "end"],
        ]

    def test_unterminated_bracket_yields_partial_segment(self):
        events = self._stream(["start", "a"])
        [segment] = events_between(events, "start", "end")
        assert [e.kind for e in segment] == ["start", "a"]

    def test_events_outside_brackets_are_dropped(self):
        events = self._stream(["orphan", "end"])
        assert events_between(events, "start", "end") == []
