"""Instrumentation smoke tests: the layers emit what the docs promise.

Runs a full explore-then-exploit campaign on the tiny 90-configuration
board inside an observability session and checks every instrumented layer
left its mark — events, counters, and timer histograms.
"""

import pytest

from repro.core import BoFLController
from repro.federated.deadlines import UniformDeadlines
from repro.hardware import SimulatedDevice
from repro.obs import runtime as obs
from tests.conftest import build_tiny_spec, build_tiny_workload

JOBS = 60
ROUNDS = 20


@pytest.fixture()
def traced_session(fast_config):
    """One tiny-board BoFL campaign recorded under an active session."""
    device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=0)
    controller = BoFLController(device, fast_config)
    t_min = device.model.latency(device.space.max_configuration()) * JOBS
    deadlines = UniformDeadlines(2.5).generate(t_min, ROUNDS, seed=7)
    with obs.session() as session:
        records = [controller.run_round(JOBS, d) for d in deadlines]
    return session, records


class TestControllerEvents:
    def test_one_round_event_per_round(self, traced_session):
        session, records = traced_session
        rounds = session.log.events("controller.round")
        assert len(rounds) == ROUNDS
        assert [e.payload["round"] for e in rounds] == list(range(ROUNDS))
        assert session.metrics.counter("controller.rounds") == ROUNDS

    def test_round_payload_mirrors_the_record(self, traced_session):
        session, records = traced_session
        event = session.log.events("controller.round")[0]
        record = records[0]
        assert event.payload["phase"] == record.phase
        assert event.payload["energy"] == record.energy
        assert event.payload["missed"] == record.missed
        assert len(event.payload["explored"]) == record.explored_count

    def test_events_are_stamped_with_simulated_time(self, traced_session):
        session, _ = traced_session
        times = [e.t for e in session.log.events("controller.round")]
        assert times[0] > 0.0
        assert times == sorted(times)

    def test_phase_transitions_recorded(self, traced_session):
        session, _ = traced_session
        transitions = session.log.events("controller.phase_transition")
        assert [t.payload["to_phase"] for t in transitions] == [
            "pareto_construction",
            "exploitation",
        ]

    def test_exploration_counter_matches_records(self, traced_session):
        session, records = traced_session
        total = sum(r.explored_count for r in records)
        assert session.metrics.counter("controller.explorations") == total


class TestGuardianEvents:
    def test_decisions_carry_the_eqn2_margin(self, traced_session):
        session, _ = traced_session
        decisions = session.log.events("guardian.decision")
        assert decisions
        for event in decisions:
            assert event.payload["allowed"] == (event.payload["margin"] >= 0)
        checks = session.metrics.counter("guardian.checks")
        assert checks == len(decisions)
        assert session.metrics.histograms["guardian.margin_s"].count == checks


class TestMBOEvents:
    def test_gp_fits_are_timed(self, traced_session):
        session, _ = traced_session
        fits = session.log.events("mbo.fit")
        assert fits
        assert session.metrics.counter("mbo.gp_fits") == len(fits)
        assert session.metrics.histograms["mbo.gp_fit_seconds"].count == len(fits)
        for event in fits:
            assert event.payload["n_observations"] > 0
            assert event.payload["seconds"] >= 0.0

    def test_suggest_reports_ehvi_evaluations(self, traced_session):
        session, _ = traced_session
        suggests = session.log.events("mbo.suggest")
        assert suggests
        for event in suggests:
            assert event.payload["ehvi_evaluations"] > 0
            assert event.payload["picks"] <= event.payload["batch_size"]

    def test_mbo_runs_recorded_with_costs(self, traced_session):
        session, records = traced_session
        runs = session.log.events("mbo.run")
        assert len(runs) == sum(1 for r in records if r.mbo is not None)
        for event, record in zip(runs, (r for r in records if r.mbo is not None)):
            assert event.payload["energy"] == record.mbo.energy
            assert event.payload["latency"] == record.mbo.latency


class TestILPEvents:
    def test_solves_report_nodes_and_status(self, traced_session):
        session, _ = traced_session
        solves = session.log.events("ilp.solve")
        assert solves
        assert session.metrics.counter("ilp.solves") == len(solves)
        for event in solves:
            assert event.payload["status"] in (
                "optimal", "infeasible", "unbounded", "iteration_limit"
            )
            assert event.payload["nodes"] >= 0
        assert session.metrics.histograms["ilp.solve_seconds"].count == len(solves)


class TestDisabledPath:
    def test_no_events_without_a_session(self, fast_config):
        device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=0)
        controller = BoFLController(device, fast_config)
        t_min = device.model.latency(device.space.max_configuration()) * JOBS
        controller.run_round(JOBS, t_min * 2.5)
        assert not obs.enabled()

    def test_campaign_identical_with_and_without_session(self, fast_config):
        def run():
            device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=0)
            controller = BoFLController(device, fast_config)
            t_min = device.model.latency(device.space.max_configuration()) * JOBS
            deadlines = UniformDeadlines(2.5).generate(t_min, 12, seed=7)
            return [controller.run_round(JOBS, d) for d in deadlines]

        plain = run()
        with obs.session():
            traced = run()
        assert [r.energy for r in plain] == [r.energy for r in traced]
        assert [r.explored for r in plain] == [r.explored for r in traced]
        assert [r.phase for r in plain] == [r.phase for r in traced]
