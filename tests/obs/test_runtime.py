"""Tests for the global observability switch and the emit facade."""

from repro.obs import runtime as obs
from repro.obs.metrics import NULL_TIMER


class TestSwitch:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.current() is None

    def test_enable_disable(self):
        session = obs.enable()
        try:
            assert obs.enabled()
            assert obs.current() is session
        finally:
            obs.disable()
        assert not obs.enabled()

    def test_session_restores_previous_state(self):
        assert not obs.enabled()
        with obs.session() as session:
            assert obs.current() is session
        assert not obs.enabled()

    def test_sessions_nest(self):
        with obs.session() as outer:
            with obs.session() as inner:
                obs.emit("tick")
                assert obs.current() is inner
            assert obs.current() is outer
            assert len(outer.log) == 0
            assert len(inner.log) == 1

    def test_session_restores_even_on_error(self):
        try:
            with obs.session():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not obs.enabled()


class TestFacade:
    def test_facade_noops_when_disabled(self):
        # Must not raise, must not activate anything.
        obs.emit("a.b", x=1)
        obs.count("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 2.0)
        assert not obs.enabled()

    def test_timer_is_shared_null_when_disabled(self):
        assert obs.timer("anything") is NULL_TIMER

    def test_facade_records_on_active_session(self):
        with obs.session() as session:
            obs.emit("a.b", t=3.0, x=1)
            obs.count("c", 2)
            obs.gauge("g", 7.0)
            obs.observe("h", 4.0)
            with obs.timer("span"):
                pass
        [event] = session.log.events("a.b")
        assert event.t == 3.0 and event.payload == {"x": 1}
        assert session.metrics.counter("c") == 2
        assert session.metrics.gauges["g"] == 7.0
        assert session.metrics.histograms["h"].count == 1
        assert session.metrics.histograms["span"].count == 1

    def test_ring_capacity_passes_through(self):
        with obs.session(capacity=2) as session:
            for i in range(5):
                obs.emit("tick", i=i)
        assert len(session.log) == 2
        assert session.log.emitted == 5
