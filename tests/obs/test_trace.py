"""Trace replay, and the ISSUE acceptance cross-check.

The load-bearing tests here record a real ``agx/vit/bofl`` campaign into
a JSONL trace, replay it, and assert that the trace-derived Table 3 rows
and Fig. 13 overhead fractions agree *exactly* (same floats, same
summation order) with what the ``tab3_walkthrough`` and ``fig13_overhead``
drivers compute from the campaign results directly.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import fig13_overhead, tab3_walkthrough
from repro.obs import runtime as obs
from repro.obs.events import Event, read_jsonl
from repro.obs.trace import (
    derive_overhead_fractions,
    derive_tab3_counts,
    fig13_payload_from_trace,
    find_campaign,
    render_summary,
    render_view,
    replay_campaigns,
    tab3_payload_from_trace,
)

ROUNDS = 8
SEED = 0


@pytest.fixture(scope="module")
def traced_events(tmp_path_factory):
    """Record one real agx/vit/bofl campaign and round-trip it through JSONL."""
    from repro.sim.runner import run_campaign

    with obs.session() as session:
        result = run_campaign(
            "agx", "vit", "bofl", 2.0, rounds=ROUNDS, seed=SEED, use_cache=False
        )
    path = session.log.dump_jsonl(tmp_path_factory.mktemp("trace") / "campaign.jsonl")
    return read_jsonl(path), result


class TestReplay:
    def test_one_campaign_with_all_rounds(self, traced_events):
        events, result = traced_events
        [trace] = replay_campaigns(events)
        assert trace.device == "agx"
        assert trace.task == "vit"
        assert trace.controller == "bofl"
        assert trace.deadline_ratio == 2.0
        assert len(trace.rounds) == ROUNDS

    def test_energies_survive_the_round_trip_exactly(self, traced_events):
        events, result = traced_events
        [trace] = replay_campaigns(events)
        assert trace.training_energy == result.training_energy
        assert trace.mbo_energy == result.mbo_energy
        assert trace.total_energy == result.total_energy

    def test_explored_configs_decode_to_tuples(self, traced_events):
        events, result = traced_events
        [trace] = replay_campaigns(events)
        for round_trace, record in zip(trace.rounds, result.records):
            assert len(round_trace.explored) == record.explored_count
            for config, original in zip(round_trace.explored, record.explored):
                assert config == original.as_tuple()

    def test_find_campaign_filters(self, traced_events):
        events, _ = traced_events
        traces = replay_campaigns(events)
        assert find_campaign(traces, task="vit").task == "vit"
        with pytest.raises(ConfigurationError):
            find_campaign(traces, task="resnet50")


class TestTab3CrossCheck:
    """ISSUE acceptance: trace-derived Table 3 == driver Table 3."""

    def test_payload_matches_driver_exactly(self, traced_events):
        events, _ = traced_events
        driver = tab3_walkthrough.run(
            ratio=2.0, device="agx", tasks=("vit",), rounds=ROUNDS, seed=SEED
        )
        derived = tab3_payload_from_trace(replay_campaigns(events))
        assert derived == driver

    def test_rendered_table_matches_driver(self, traced_events):
        events, _ = traced_events
        driver = tab3_walkthrough.run(
            ratio=2.0, device="agx", tasks=("vit",), rounds=ROUNDS, seed=SEED
        )
        assert render_view(events, "tab3") == tab3_walkthrough.render(driver)

    def test_derive_tab3_counts_matches_records(self, traced_events):
        events, result = traced_events
        [trace] = replay_campaigns(events)
        rows = derive_tab3_counts(trace)
        pre_exploit = [r for r in result.records if r.phase != "exploitation"]
        assert len(rows) == len(pre_exploit)
        for (index, phase, explored, pareto), record in zip(rows, pre_exploit):
            assert index == record.round_index
            assert phase == record.phase
            assert explored == record.explored_count
            assert pareto == record.explored_on_final_front

    def test_requires_a_bofl_campaign(self):
        with pytest.raises(ConfigurationError, match="no bofl campaign"):
            tab3_payload_from_trace([])


class TestFig13CrossCheck:
    """ISSUE acceptance: trace-derived Fig. 13 == driver Fig. 13."""

    def test_payload_matches_driver_exactly(self, traced_events):
        events, _ = traced_events
        driver = fig13_overhead.run(
            devices=("agx",), tasks=("vit",), ratio=2.0, rounds=ROUNDS, seed=SEED
        )
        derived = fig13_payload_from_trace(replay_campaigns(events))
        assert derived == driver

    def test_rendered_figure_matches_driver(self, traced_events):
        events, _ = traced_events
        driver = fig13_overhead.run(
            devices=("agx",), tasks=("vit",), ratio=2.0, rounds=ROUNDS, seed=SEED
        )
        assert render_view(events, "fig13") == fig13_overhead.render(driver)

    def test_overhead_fraction_matches_result(self, traced_events):
        events, result = traced_events
        traces = replay_campaigns(events)
        fractions = derive_overhead_fractions(traces)
        assert fractions[("agx", "vit")] == result.mbo_energy / result.total_energy

    def test_requires_a_bofl_campaign(self):
        with pytest.raises(ConfigurationError, match="no bofl campaign"):
            fig13_payload_from_trace([])


class TestSummaryView:
    def test_summary_lists_kinds_and_campaigns(self, traced_events):
        events, _ = traced_events
        text = render_summary(events)
        assert "controller.round" in text
        assert "agx/vit/bofl" in text
        assert "per-round energy" in text

    def test_empty_trace_summary(self):
        assert render_summary([]) == "(empty trace)"

    def test_summary_without_campaign_brackets(self):
        text = render_summary([Event(kind="executor.cell", payload={"seconds": 1})])
        assert "executor.cell" in text

    def test_unknown_view_rejected(self, traced_events):
        events, _ = traced_events
        with pytest.raises(ConfigurationError, match="unknown trace view"):
            render_view(events, "fig99")
