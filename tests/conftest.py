"""Shared fixtures.

Controller and integration tests run against a deliberately small custom
board (90 configurations) so full explore-then-exploit campaigns finish in
well under a second; calibration/phenomenology tests use the real AGX/TX2
specs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BoFLConfig
from repro.hardware import (
    ConfigurationSpace,
    DeviceSpec,
    FrequencyTable,
    SimulatedDevice,
    VoltageCurve,
    jetson_agx,
    jetson_tx2,
)
from repro.hardware.noise import MeasurementNoise, NoiselessMeasurement
from repro.hardware.perfmodel import CalibrationTarget
from repro.workloads import WorkloadProfile, vit


def build_tiny_spec() -> DeviceSpec:
    """A 6 x 5 x 3 = 90-configuration board for fast tests."""
    space = ConfigurationSpace(
        FrequencyTable.linspaced("cpu", 0.4, 2.0, 6),
        FrequencyTable.linspaced("gpu", 0.2, 1.2, 5),
        FrequencyTable.linspaced("mem", 0.5, 1.5, 3),
    )
    return DeviceSpec(
        name="tiny",
        long_name="Tiny test board",
        cpu_description="test CPU",
        gpu_description="test GPU",
        mem_description="test memory",
        space=space,
        cpu_voltage=VoltageCurve(0.4, 2.0, 0.6, 1.1, gamma=1.4),
        gpu_voltage=VoltageCurve(0.2, 1.2, 0.6, 1.1, gamma=1.4),
        mem_voltage=VoltageCurve(0.5, 1.5, 0.8, 1.05),
        static_watts=1.0,
        idle_watts=(0.1, 0.12, 0.08),
        waiting_fractions=(0.1, 0.25, 0.05),
        relative_cpu_speed=1.0,
    )


def build_tiny_workload() -> WorkloadProfile:
    """A workload calibrated for the tiny board (fast jobs: ~60 ms)."""
    return WorkloadProfile(
        name="tiny_net",
        family="cnn",
        dataset="TEST",
        description="test workload",
        targets={
            "tiny": CalibrationTarget(
                latency_at_max=0.06,
                energy_at_max=0.9,
                busy_shares=(0.3, 0.5, 0.2),
                dynamic_split=(0.3, 0.5, 0.2),
                serial_fraction=0.35,
            )
        },
    )


@pytest.fixture(scope="session")
def agx_spec():
    return jetson_agx()


@pytest.fixture(scope="session")
def tx2_spec():
    return jetson_tx2()


@pytest.fixture(scope="session")
def vit_workload():
    return vit()


@pytest.fixture(scope="session")
def agx_vit_model(agx_spec, vit_workload):
    return vit_workload.performance_model(agx_spec)


@pytest.fixture()
def tiny_spec():
    return build_tiny_spec()


@pytest.fixture()
def tiny_workload():
    return build_tiny_workload()


@pytest.fixture()
def tiny_device(tiny_spec, tiny_workload):
    return SimulatedDevice(tiny_spec, tiny_workload, seed=0)


@pytest.fixture()
def quiet_device(tiny_spec, tiny_workload):
    """A tiny device with zero noise — deterministic job costs."""
    return SimulatedDevice(
        tiny_spec, tiny_workload, noise=NoiselessMeasurement(), seed=0
    )


@pytest.fixture()
def fast_config():
    """BoFL settings sized for the tiny board: short tau, tiny batches."""
    return BoFLConfig(
        tau=0.4,
        initial_sample_fraction=0.06,  # -> 5 starting points of 90
        min_explored_fraction=0.15,
        max_batch_size=4,
        fit_restarts=0,
        seed=1,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


@pytest.fixture()
def mild_noise():
    return MeasurementNoise(seed=3)
