"""Tests for the pace-decision request/response schema."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.service.api import (
    DECISION_SCHEMA_VERSION,
    Decision,
    DecisionPlan,
    DecisionRequest,
    PlanStep,
    request_key_hash,
)
from repro.types import DvfsConfiguration, Schedule, ScheduleEntry


def _request(**overrides):
    fields = dict(device="agx", task="vit", jobs=100, deadline=60.0)
    fields.update(overrides)
    return DecisionRequest(**fields)


def _schedule():
    fast = ScheduleEntry(DvfsConfiguration(2.2, 1.3, 2.1), 60)
    slow = ScheduleEntry(DvfsConfiguration(1.2, 0.8, 1.6), 40)
    return Schedule(entries=(fast, slow), expected_latency=55.0, expected_energy=900.0)


class TestDecisionRequest:
    def test_validates_fields(self):
        with pytest.raises(ConfigurationError):
            _request(device="")
        with pytest.raises(ConfigurationError):
            _request(task="")
        with pytest.raises(ConfigurationError):
            _request(jobs=0)
        with pytest.raises(ConfigurationError):
            _request(deadline=0.0)
        with pytest.raises(ConfigurationError):
            _request(safety_margin=1.0)

    def test_token_embeds_schema_version(self):
        assert _request().token()["schema"] == DECISION_SCHEMA_VERSION

    def test_hash_is_stable_hex(self):
        assert request_key_hash(_request()) == request_key_hash(_request())
        int(request_key_hash(_request()), 16)

    def test_hash_excludes_client_identity(self):
        a = request_key_hash(_request(client_id="client-0001"))
        b = request_key_hash(_request(client_id="client-0999"))
        assert a == b

    def test_hash_distinguishes_every_semantic_field(self):
        base = request_key_hash(_request())
        assert request_key_hash(_request(device="tx2")) != base
        assert request_key_hash(_request(task="lstm")) != base
        assert request_key_hash(_request(jobs=101)) != base
        assert request_key_hash(_request(deadline=60.5)) != base
        assert request_key_hash(_request(safety_margin=0.05)) != base

    def test_dict_round_trip(self):
        request = _request(client_id="client-0042")
        assert DecisionRequest.from_dict(request.to_dict()) == request

    def test_from_dict_rejects_missing_and_malformed(self):
        with pytest.raises(ConfigurationError):
            DecisionRequest.from_dict({"device": "agx"})
        with pytest.raises(ConfigurationError):
            DecisionRequest.from_dict(
                {"device": "agx", "task": "vit", "jobs": "many", "deadline": 60.0}
            )


class TestDecisionPlan:
    def test_from_schedule_drops_zero_job_entries(self):
        schedule = Schedule(
            entries=(
                ScheduleEntry(DvfsConfiguration(2.2, 1.3, 2.1), 100),
                ScheduleEntry(DvfsConfiguration(1.2, 0.8, 1.6), 0),
            ),
            expected_latency=50.0,
            expected_energy=800.0,
        )
        plan = DecisionPlan.from_schedule("abc", schedule)
        assert len(plan.steps) == 1
        assert plan.total_jobs == 100

    def test_round_trips_float_frequencies(self):
        plan = DecisionPlan.from_schedule("abc", _schedule())
        again = DecisionPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.steps[0].frequencies == (2.2, 1.3, 2.1)

    def test_source_is_validated(self):
        with pytest.raises(ConfigurationError):
            DecisionPlan(
                request_hash="abc",
                steps=(PlanStep((1.0, 1.0, 1.0), 1),),
                expected_latency=1.0,
                expected_energy=1.0,
                source="guesswork",
            )

    def test_with_source_relabels_without_copying_identity(self):
        plan = DecisionPlan.from_schedule("abc", _schedule())
        assert plan.with_source("computed") is plan
        relabelled = plan.with_source("cache")
        assert relabelled.source == "cache"
        assert relabelled.steps == plan.steps


class TestDecisionLog:
    def test_latency_is_completion_minus_arrival(self):
        decision = Decision(
            request=_request(),
            plan=DecisionPlan.from_schedule("abc", _schedule()),
            arrival=10.0,
            completed=10.25,
        )
        assert decision.latency == pytest.approx(0.25)

    def test_log_line_is_canonical_json(self):
        decision = Decision(
            request=_request(client_id="client-0001"),
            plan=DecisionPlan.from_schedule("abc", _schedule()),
            arrival=1.0,
            completed=1.002,
            sequence=7,
        )
        record = json.loads(decision.log_line())
        assert record["seq"] == 7
        assert record["client_id"] == "client-0001"
        assert record["source"] == "computed"
        assert "degraded" not in record
        # Canonical: sorted keys, no whitespace.
        assert decision.log_line() == json.dumps(
            record, sort_keys=True, separators=(",", ":")
        )

    def test_degraded_decisions_carry_the_reason(self):
        decision = Decision(
            request=_request(),
            plan=DecisionPlan.from_schedule("abc", _schedule(), "fallback"),
            arrival=0.0,
            completed=0.25,
            degraded="timeout",
        )
        assert json.loads(decision.log_line())["degraded"] == "timeout"
