"""Tests for the deterministic load generator and its reports."""

import json

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.service import (
    fleet_requests,
    quantile,
    run_loadtest,
    service_report_from_trace,
)
from repro.sim.fleet import FleetSpec

SPEC = FleetSpec(n_clients=12, rounds=2, seed=7)


@pytest.fixture(scope="module")
def report():
    return run_loadtest(SPEC, rate=200.0, passes=2)


class TestQuantile:
    def test_nearest_rank_percentiles(self):
        values = [float(v) for v in range(1, 101)]
        assert quantile(values, 0.50) == 50.0
        assert quantile(values, 0.99) == 99.0
        assert quantile(values, 1.00) == 100.0

    def test_unsorted_input_and_edge_cases(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert quantile([], 0.5) == 0.0
        assert quantile([7.0], 0.01) == 7.0
        with pytest.raises(ConfigurationError):
            quantile([1.0], 0.0)
        with pytest.raises(ConfigurationError):
            quantile([1.0], 1.5)


class TestFleetRequests:
    def test_one_request_per_client_round(self):
        trace = fleet_requests(SPEC, rate=200.0)
        assert len(trace) == SPEC.n_clients * SPEC.rounds

    def test_offsets_are_sorted_and_nonnegative(self):
        trace = fleet_requests(SPEC, rate=200.0)
        offsets = [t.offset for t in trace]
        assert offsets == sorted(offsets)
        assert offsets[0] >= 0.0

    def test_stream_is_seed_deterministic(self):
        assert fleet_requests(SPEC, rate=200.0) == fleet_requests(SPEC, rate=200.0)
        other = fleet_requests(
            FleetSpec(n_clients=12, rounds=2, seed=8), rate=200.0
        )
        assert other != fleet_requests(SPEC, rate=200.0)

    def test_archetype_mates_ask_identical_questions(self):
        trace = fleet_requests(SPEC, rate=200.0)
        by_round: dict[tuple, set] = {}
        for timed in trace:
            request = timed.request
            key = (request.device, request.task, request.deadline)
            by_round.setdefault((request.device, request.task), set()).add(key)
        # 12 clients over 6 (device, task) archetypes: per archetype the
        # deadline set has exactly `rounds` distinct values, shared by
        # both clients of the archetype.
        assert len(by_round) == 6
        for keys in by_round.values():
            assert len(keys) == SPEC.rounds

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            fleet_requests(SPEC, rate=0.0)


class TestRunLoadtest:
    def test_replays_are_byte_identical(self, report):
        again = run_loadtest(SPEC, rate=200.0, passes=2)
        assert report.decision_log_lines() == again.decision_log_lines()

    def test_counts_and_passes(self, report):
        assert report.requests == SPEC.n_clients * SPEC.rounds * 2
        assert [p.index for p in report.per_pass] == [1, 2]
        assert sum(p.requests for p in report.per_pass) == report.requests

    def test_second_pass_is_warm(self, report):
        cold, warm = report.per_pass
        assert warm.cache_hit_rate >= 0.5
        assert warm.cache_hit_rate > cold.cache_hit_rate
        assert warm.p99 <= cold.p99

    def test_latency_percentiles_are_ordered(self, report):
        assert 0.0 < report.p50 <= report.p99 <= report.max

    def test_report_serializes(self, tmp_path, report):
        path = report.write_json(tmp_path / "report.json")
        payload = json.loads(path.read_text())
        assert payload["requests"] == report.requests
        assert payload["p99_latency_s"] == report.p99
        assert len(payload["passes_detail"]) == 2
        assert "Loadtest summary" in report.render()

    def test_decision_log_round_trips(self, tmp_path, report):
        path = report.write_decision_log(tmp_path / "decisions.jsonl")
        lines = path.read_text().splitlines()
        assert lines == report.decision_log_lines()
        assert all(json.loads(line)["seq"] >= 1 for line in lines)

    def test_passes_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_loadtest(SPEC, passes=0)


class TestTraceReplay:
    def test_summary_recomputes_from_the_trace_alone(self, tmp_path):
        with obs.session(deterministic=True) as session:
            report = run_loadtest(SPEC, rate=200.0, passes=2)
        path = session.log.dump_jsonl(tmp_path / "service.jsonl")
        rendered = service_report_from_trace(path)
        assert f"decisions        : {report.requests}" in rendered
        assert f"p50 {report.p50 * 1e3:.3f} ms" in rendered
        assert f"p99 {report.p99 * 1e3:.3f} ms" in rendered

    def test_serviceless_trace_fails_cleanly(self, tmp_path):
        with obs.session(deterministic=True) as session:
            obs.emit("campaign.start", t=0.0)
        path = session.log.dump_jsonl(tmp_path / "empty.jsonl")
        with pytest.raises(ConfigurationError):
            service_report_from_trace(path)
