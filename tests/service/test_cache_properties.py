"""Property-based suite for the decision-cache key discipline.

The contract (mirroring ``repro.sim.cache``): a request's cache identity
is its *semantic* content.  Two requests that differ only in JSON field
ordering, float formatting, or client identity must hash identically and
hit the same cache entry; any semantic change — device, task, jobs,
deadline, safety margin — must miss.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.api import DecisionPlan, DecisionRequest, PlanStep, request_key_hash
from repro.service.cache import DecisionCache

DEVICES = ("agx", "tx2", "nano", "xavier-nx")
TASKS = ("vit", "resnet50", "lstm")

requests = st.builds(
    DecisionRequest,
    device=st.sampled_from(DEVICES),
    task=st.sampled_from(TASKS),
    jobs=st.integers(min_value=1, max_value=100_000),
    deadline=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    safety_margin=st.floats(min_value=0.0, max_value=0.999, exclude_max=False),
    client_id=st.text(max_size=12),
)


def _plan_for(request: DecisionRequest) -> DecisionPlan:
    return DecisionPlan(
        request_hash=request_key_hash(request),
        steps=(PlanStep((1.0, 1.0, 1.0), request.jobs),),
        expected_latency=1.0,
        expected_energy=1.0,
    )


def _reordered_copy(request: DecisionRequest, order: list[int]) -> DecisionRequest:
    """The same request rebuilt from a field-reordered JSON object."""
    items = list(request.to_dict().items())
    shuffled = {items[i][0]: items[i][1] for i in order}
    return DecisionRequest.from_dict(json.loads(json.dumps(shuffled)))


@given(requests, st.permutations(list(range(6))))
@settings(max_examples=200)
def test_field_ordering_never_changes_the_key(request, order):
    assert request_key_hash(_reordered_copy(request, order)) == request_key_hash(
        request
    )


@given(requests)
@settings(max_examples=200)
def test_float_formatting_never_changes_the_key(request):
    # Integral floats serialized as JSON integers ("60" vs "60.0"), plus
    # exponent notation, canonicalize to the same key.
    raw = request.to_dict()
    reformatted = dict(raw)
    if float(raw["deadline"]).is_integer():
        reformatted["deadline"] = int(raw["deadline"])
    reformatted["safety_margin"] = float(
        format(float(raw["safety_margin"]), ".17e")
    )
    again = DecisionRequest.from_dict(reformatted)
    assert request_key_hash(again) == request_key_hash(request)


@given(requests, st.text(max_size=12))
@settings(max_examples=100)
def test_client_identity_never_changes_the_key(request, other_client):
    twin = DecisionRequest.from_dict({**request.to_dict(), "client_id": other_client})
    assert request_key_hash(twin) == request_key_hash(request)


@given(requests, st.permutations(list(range(6))))
@settings(max_examples=100)
def test_reordered_twin_hits_the_same_entry(request, order):
    cache = DecisionCache(max_entries=8)
    cache.put(request, _plan_for(request))
    hit = cache.get(_reordered_copy(request, order))
    assert hit is not None
    assert hit.request_hash == request_key_hash(request)
    assert cache.stats().hits == 1


@given(
    requests,
    st.sampled_from(("device", "task", "jobs", "deadline", "safety_margin")),
)
@settings(max_examples=200)
def test_any_semantic_change_misses(request, field):
    raw = request.to_dict()
    if field == "device":
        raw["device"] = next(d for d in DEVICES if d != request.device)
    elif field == "task":
        raw["task"] = next(t for t in TASKS if t != request.task)
    elif field == "jobs":
        raw["jobs"] = request.jobs + 1
    elif field == "deadline":
        raw["deadline"] = request.deadline * 2.0 + 1.0
    else:
        raw["safety_margin"] = (request.safety_margin + 0.5) % 1.0
    changed = DecisionRequest.from_dict(raw)
    if field in ("deadline", "safety_margin") and getattr(
        changed, field
    ) == getattr(request, field):
        return  # degenerate draw: the perturbation rounded away
    assert request_key_hash(changed) != request_key_hash(request)
    cache = DecisionCache(max_entries=8)
    cache.put(request, _plan_for(request))
    assert cache.get(changed) is None
    assert cache.stats().misses == 1
