"""Tests for the deterministic pace-decision service engine.

A synthetic two-candidate archetype profile keeps these tests fast and
makes every simulated service time computable by hand: with the default
cost model, a cold evaluation takes ``evaluate + 2 * per_candidate +
profile_build`` and a warm one drops the profile-build term.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.api import DecisionRequest
from repro.service.archetypes import ArchetypeProfile
from repro.service.engine import PaceDecisionService, ServiceConfig, ServiceCostModel
from repro.types import DvfsConfiguration

FAST = DvfsConfiguration(2.0, 1.0, 2.0)
SLOW = DvfsConfiguration(1.0, 0.5, 1.0)


def _toy_profile(device: str, task: str) -> ArchetypeProfile:
    return ArchetypeProfile.from_candidates(
        device,
        task,
        (FAST, SLOW),
        np.array([0.1, 0.3]),
        np.array([30.0, 10.0]),
        x_max=FAST,
        jobs_per_round=10,
    )


def _service(**config_overrides) -> PaceDecisionService:
    return PaceDecisionService(
        ServiceConfig(**config_overrides), profiles=_toy_profile
    )


def _request(**overrides) -> DecisionRequest:
    fields = dict(device="agx", task="vit", jobs=10, deadline=10.0)
    fields.update(overrides)
    return DecisionRequest(**fields)


COSTS = ServiceCostModel()
COLD_EVAL = COSTS.evaluate + 2 * COSTS.per_candidate + COSTS.profile_build
WARM_EVAL = COSTS.evaluate + 2 * COSTS.per_candidate


class TestEvaluationPath:
    def test_cold_evaluation_pays_the_profile_build(self):
        service = _service()
        decision = service.decide(_request(), at=0.0)
        assert decision.plan.source == "computed"
        assert decision.latency == pytest.approx(COLD_EVAL)
        assert service.evaluations == 1

    def test_warm_archetype_skips_the_profile_build(self):
        service = _service()
        service.decide(_request(), at=0.0)
        decision = service.decide(_request(deadline=11.0), at=1.0)
        assert decision.plan.source == "computed"
        assert decision.latency == pytest.approx(WARM_EVAL)

    def test_repeat_request_is_a_cache_hit(self):
        service = _service()
        first = service.decide(_request(), at=0.0)
        repeat = service.decide(_request(), at=1.0)
        assert repeat.plan.source == "cache"
        assert repeat.plan.steps == first.plan.steps
        assert repeat.latency == pytest.approx(COSTS.hit)
        assert service.evaluations == 1

    def test_impossible_deadline_falls_back_to_x_max(self):
        # 10 jobs at 0.1 s each needs 1 s; a 0.5 s deadline is infeasible.
        service = _service()
        decision = service.decide(_request(deadline=0.5), at=0.0)
        assert decision.plan.source == "fallback"
        assert decision.plan.total_jobs == 10
        assert decision.plan.steps[0].frequencies == FAST.as_tuple()
        assert service.fallbacks == 1


class TestCoalescing:
    def test_identical_inflight_requests_share_one_evaluation(self):
        service = _service()
        service.submit(_request(client_id="a"), at=0.0)
        service.submit(_request(client_id="b"), at=0.001)
        service.submit(_request(client_id="c"), at=0.002)
        service.drain()
        assert service.evaluations == 1
        assert service.coalesced == 2
        leader, *joiners = service.decisions
        assert leader.plan.source == "computed"
        assert not leader.coalesced
        for joiner in joiners:
            assert joiner.plan.source == "coalesced"
            assert joiner.coalesced
            assert joiner.completed == leader.completed
            assert joiner.plan.steps == leader.plan.steps

    def test_different_profiles_never_coalesce(self):
        service = _service()
        service.submit(_request(deadline=10.0), at=0.0)
        service.submit(_request(deadline=11.0), at=0.001)
        service.drain()
        assert service.evaluations == 2
        assert service.coalesced == 0

    def test_tentative_settles_do_not_inflate_cache_counters(self):
        # Every submit peeks at the in-flight head; only the final commit
        # registers real cache traffic.
        service = _service()
        for index in range(20):
            service.submit(_request(client_id=f"c{index}"), at=index * 1e-4)
        service.drain()
        stats = service.cache.stats()
        assert stats.misses == 1
        assert stats.writes == 1

    def test_arrival_after_completion_does_not_coalesce(self):
        service = _service()
        service.submit(_request(), at=0.0)
        service.submit(_request(), at=1.0)  # long after the eval completed
        service.drain()
        assert service.coalesced == 0
        assert service.decisions[1].plan.source == "cache"


class TestDegradation:
    def test_queued_past_timeout_is_answered_by_the_watchdog(self):
        service = _service(timeout=0.04)
        service.submit(_request(deadline=10.0), at=0.0)
        service.submit(_request(deadline=11.0), at=0.001)
        service.drain()
        degraded = service.decisions[-1]
        assert degraded.degraded == "timeout"
        assert degraded.plan.source == "fallback"
        assert degraded.completed == pytest.approx(0.001 + 0.04)
        assert service.timeouts == 1
        assert service.evaluations == 1

    def test_watchdog_serves_stale_cache_when_available(self):
        service = _service(timeout=0.04)
        service.decide(_request(deadline=11.0), at=0.0)  # populate the cache
        # Queue the cached question behind a cold evaluation of another
        # archetype, long enough that the watchdog fires first.
        service.submit(_request(task="lstm"), at=1.0)
        service.submit(_request(deadline=11.0), at=1.001)
        service.drain()
        degraded = service.decisions[-1]
        assert degraded.degraded == "timeout"
        assert degraded.plan.source == "cache"

    def test_bounded_queue_rejects_submits_immediately(self):
        service = _service(max_queue=1)
        service.submit(_request(deadline=10.0), at=0.0)
        service.submit(_request(deadline=11.0), at=0.0)
        assert service.rejections == 1
        rejected = service.decisions[-1]
        assert rejected.degraded == "queue_full"
        assert rejected.latency == pytest.approx(COSTS.degraded)
        service.drain()
        assert service.evaluations == 1

    def test_arrivals_must_be_nondecreasing(self):
        service = _service()
        service.submit(_request(), at=1.0)
        with pytest.raises(ConfigurationError):
            service.submit(_request(), at=0.5)


class TestLifecycle:
    def test_decide_returns_the_matching_decision(self):
        service = _service()
        request = _request(client_id="me")
        decision = service.decide(request, at=0.0)
        assert decision.request is request

    def test_close_drains_and_reports(self):
        service = _service()
        service.submit(_request(client_id="a"), at=0.0)
        service.submit(_request(client_id="b"), at=0.001)
        stats = service.close()
        assert stats.decisions == 2
        assert stats.requests == 2
        assert stats.coalesced == 1
        assert stats.peak_queue_depth == 1
        assert 0.0 < stats.coalescing_ratio < 1.0

    def test_identical_streams_produce_identical_logs(self):
        def replay() -> list[str]:
            service = _service()
            for index in range(30):
                service.submit(
                    _request(
                        deadline=10.0 + (index % 3),
                        client_id=f"c{index % 5}",
                    ),
                    at=index * 0.002,
                )
            service.drain()
            return [d.log_line() for d in service.decisions]

        assert replay() == replay()
