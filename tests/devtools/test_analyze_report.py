"""Report serialization, the baseline ratchet, and real-tree guarantees."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.devtools.analyze import (
    ANALYSIS_REPORT_VERSION,
    AnalysisReport,
    BASELINE_VERSION,
    Finding,
    analyze_paths,
    load_baseline,
    ratchet,
    render_baseline,
    write_baseline,
)
from repro.errors import ConfigurationError

REPO = pathlib.Path(__file__).resolve().parents[2]


def finding(line=3, message="m", checker="determinism-taint", path="src/repro/a.py"):
    return Finding(checker=checker, path=path, line=line, col=0, message=message)


class TestSerialization:
    def test_json_layout_and_version(self):
        report = AnalysisReport(
            findings=[finding()], checked_modules=1, checker_ids=["determinism-taint"]
        )
        document = json.loads(report.render_json())
        assert document["version"] == ANALYSIS_REPORT_VERSION
        assert document["ok"] is False
        assert document["findings"][0]["checker"] == "determinism-taint"
        assert document["findings"][0]["fingerprint"]

    def test_sarif_structure(self):
        report = AnalysisReport(
            findings=[finding()], checked_modules=1, checker_ids=["determinism-taint"]
        )
        sarif = json.loads(report.render_sarif())
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        result = run["results"][0]
        assert result["ruleId"] == "determinism-taint"
        assert result["partialFingerprints"]["reproAnalyze/v1"]
        assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 3

    def test_fingerprint_ignores_location_drift(self):
        assert finding(line=3).fingerprint() == finding(line=99).fingerprint()
        assert finding().fingerprint() != finding(message="other").fingerprint()


class TestRatchet:
    def test_baselined_findings_pass_new_ones_fail(self, tmp_path):
        old = AnalysisReport(findings=[finding()])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, old)
        new = AnalysisReport(findings=[finding(), finding(message="fresh")])
        result = ratchet(new, load_baseline(baseline_path))
        assert not result.ok
        assert len(result.new) == 1
        assert result.new[0].message == "fresh"
        assert result.baselined == 1
        assert result.stale == 0

    def test_baseline_is_a_multiset(self, tmp_path):
        # One baselined occurrence does not cover a duplicated violation.
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, AnalysisReport(findings=[finding()]))
        doubled = AnalysisReport(findings=[finding(line=3), finding(line=9)])
        result = ratchet(doubled, load_baseline(baseline_path))
        assert len(result.new) == 1

    def test_stale_entries_reported_not_fatal(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, AnalysisReport(findings=[finding()]))
        result = ratchet(AnalysisReport(), load_baseline(baseline_path))
        assert result.ok
        assert result.stale == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_damaged_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_baseline(bad)
        bad.write_text(json.dumps({"version": 99, "fingerprints": []}))
        with pytest.raises(ConfigurationError, match="unsupported layout"):
            load_baseline(bad)

    def test_baseline_version_pinned(self):
        document = json.loads(render_baseline(AnalysisReport()))
        assert document["version"] == BASELINE_VERSION


class TestRealTree:
    def test_real_tree_clean_against_committed_baseline(self):
        report = analyze_paths([REPO / "src" / "repro"], root=REPO)
        assert report.checked_modules > 100
        baseline = load_baseline(REPO / "analysis-baseline.json")
        result = ratchet(report, baseline)
        assert result.ok, "\n".join(f.render() for f in result.new)
        assert result.stale == 0, "stale analysis-baseline.json entries"

    def test_report_byte_identical_across_runs(self):
        first = analyze_paths([REPO / "src" / "repro"], root=REPO)
        second = analyze_paths([REPO / "src" / "repro"], root=REPO)
        assert first.render_json() == second.render_json()
        assert first.render_sarif() == second.render_sarif()

    def test_cli_ratchet_exits_clean(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", "--ratchet"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=False,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "0 new finding(s)" in completed.stdout

    def test_cli_sarif_and_json_formats(self, tmp_path):
        sarif_path = tmp_path / "out.sarif"
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", "analyze",
                "--format", "json", "--sarif", str(sarif_path),
            ],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=False,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert json.loads(completed.stdout)["ok"] is True
        assert json.loads(sarif_path.read_text())["version"] == "2.1.0"
