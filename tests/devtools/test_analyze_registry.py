"""Registry-closure checker: events and counters, both directions."""


EVENTS = """\
    EVENT_KINDS = frozenset({
        "campaign.start",
        "campaign.end",
        "trace.header",
    })
"""

COUNTERS = """\
    COUNTER_NAMES = frozenset({
        "campaign.cache_*",
        "guardian.checks",
        "unused.counter",
    })
"""


def registry_hits(report):
    return [f for f in report.findings if f.checker == "registry-closure"]


class TestEventClosure:
    def test_unregistered_kind_flagged_registered_pass(self, analyze_tree):
        report = analyze_tree({
            "src/repro/obs/events.py": EVENTS,
            "src/repro/core/loop.py": """\
                from repro import obs

                def tick():
                    obs.emit("campaign.start", t=0.0)
                    obs.emit("campaign.end", t=1.0)
                    obs.emit("bogus.kind", t=2.0)
            """,
        })
        hits = registry_hits(report)
        assert len(hits) == 1
        assert "'bogus.kind'" in hits[0].message
        assert "not registered" in hits[0].message
        assert hits[0].path == "src/repro/core/loop.py"

    def test_orphan_registered_kind_flagged(self, analyze_tree):
        report = analyze_tree({
            "src/repro/obs/events.py": EVENTS,
            "src/repro/core/loop.py": """\
                from repro import obs

                def tick():
                    obs.emit("campaign.start", t=0.0)
            """,
        })
        hits = registry_hits(report)
        assert len(hits) == 1
        assert "'campaign.end'" in hits[0].message
        assert "never emitted" in hits[0].message
        assert hits[0].path == "src/repro/obs/events.py"

    def test_plumbing_kind_needs_no_emitter(self, analyze_tree):
        # trace.header is written by the trace writer itself, not emit().
        report = analyze_tree({
            "src/repro/obs/events.py": EVENTS,
            "src/repro/core/loop.py": """\
                from repro import obs

                def tick():
                    obs.emit("campaign.start", t=0.0)
                    obs.emit("campaign.end", t=1.0)
            """,
        })
        assert registry_hits(report) == []


class TestCounterClosure:
    def test_wildcard_family_and_exact_names(self, analyze_tree):
        report = analyze_tree({
            "src/repro/obs/metrics.py": COUNTERS,
            "src/repro/core/loop.py": """\
                from repro.obs import runtime as obs

                def tick(layer):
                    obs.count(f"campaign.cache_{layer}")
                    obs.count("guardian.checks")
            """,
            "src/repro/obs/runtime.py": """\
                def count(name, value=1):
                    return None
            """,
        })
        hits = registry_hits(report)
        assert len(hits) == 1
        assert "'unused.counter'" in hits[0].message
        assert "never emitted" in hits[0].message

    def test_unregistered_counter_flagged(self, analyze_tree):
        report = analyze_tree({
            "src/repro/obs/metrics.py": """\
                COUNTER_NAMES = frozenset({"guardian.checks"})
            """,
            "src/repro/core/loop.py": """\
                from repro.obs import runtime as obs

                def tick():
                    obs.count("guardian.checks")
                    obs.count("surprise.counter")
            """,
            "src/repro/obs/runtime.py": """\
                def count(name, value=1):
                    return None
            """,
        })
        hits = registry_hits(report)
        assert len(hits) == 1
        assert "'surprise.counter'" in hits[0].message

    def test_dynamic_counter_needs_identical_registered_pattern(
        self, analyze_tree
    ):
        # An f-string family only passes when the registry opts in with
        # the *same* pattern; a wildcard use never matches exact entries.
        report = analyze_tree({
            "src/repro/obs/metrics.py": """\
                COUNTER_NAMES = frozenset({"guardian.checks"})
            """,
            "src/repro/core/loop.py": """\
                from repro.obs import runtime as obs

                def tick(kind):
                    obs.count(f"guardian.{kind}")
            """,
            "src/repro/obs/runtime.py": """\
                def count(name, value=1):
                    return None
            """,
        })
        hits = registry_hits(report)
        assert any("'guardian.*'" in f.message for f in hits)


class TestMissingRegistries:
    def test_tree_without_registries_skips_checker(self, analyze_tree):
        report = analyze_tree({
            "src/repro/core/loop.py": """\
                from repro import obs

                def tick():
                    obs.emit("anything.goes", t=0.0)
            """,
        })
        assert registry_hits(report) == []
