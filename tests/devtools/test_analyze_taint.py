"""Determinism-taint checker: sources through call hops into sinks."""


def taint_hits(report):
    return [f for f in report.findings if f.checker == "determinism-taint"]


class TestWallClockTaint:
    def test_two_hop_taint_reaches_emission(self, analyze_tree):
        # time.time() -> now() -> stamp() -> emit(...): two call hops,
        # one of them through a *relative* import.
        report = analyze_tree({
            "src/repro/core/timing.py": """\
                import time

                def now():
                    return time.time()
            """,
            "src/repro/core/mid.py": """\
                from .timing import now

                def stamp():
                    return now() * 2.0
            """,
            "src/repro/core/loop.py": """\
                from repro import obs
                from .mid import stamp

                def tick():
                    obs.emit("campaign.start", t=stamp())
            """,
        })
        hits = taint_hits(report)
        assert len(hits) == 1
        assert hits[0].path == "src/repro/core/loop.py"
        assert "wall-clock" in hits[0].message
        assert "trace emission" in hits[0].message
        assert "stamp() -> now() -> time.time()" in hits[0].message

    def test_taint_through_local_variable(self, analyze_tree):
        report = analyze_tree({
            "src/repro/core/loop.py": """\
                import time
                from repro import obs

                def tick():
                    started = time.perf_counter()
                    elapsed = started - 1.0
                    obs.emit("campaign.end", seconds=elapsed)
            """,
        })
        hits = taint_hits(report)
        assert len(hits) == 1
        assert "time.perf_counter()" in hits[0].message

    def test_clean_simulated_time_passes(self, analyze_tree):
        report = analyze_tree({
            "src/repro/core/loop.py": """\
                from repro import obs

                def tick(clock):
                    obs.emit("campaign.end", t=clock.now)
            """,
        })
        assert taint_hits(report) == []

    def test_exempt_module_is_trusted(self, analyze_tree):
        # sim/executor.py is structurally exempt: its wall-clock reads
        # neither flag locally nor taint its callers.
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                import time

                def cell_seconds():
                    return time.perf_counter()
            """,
            "src/repro/core/loop.py": """\
                from repro.sim.executor import cell_seconds
                from repro import obs

                def tick():
                    obs.emit("campaign.end", seconds=cell_seconds())
            """,
        })
        assert taint_hits(report) == []


class TestRngAndFsTaint:
    def test_unseeded_rng_into_cache_key(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/jitterlib.py": """\
                import random

                def jitter():
                    return random.random()
            """,
            "src/repro/sim/cachey.py": """\
                from repro.sim.jitterlib import jitter

                def cache_token(payload):
                    return payload

                def build(x):
                    return cache_token({"x": x, "j": jitter()})
            """,
        })
        hits = taint_hits(report)
        assert len(hits) == 1
        assert "unseeded-RNG" in hits[0].message
        assert "cache-key construction" in hits[0].message

    def test_seeded_generator_is_clean(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/cachey.py": """\
                import random

                def cache_token(payload):
                    return payload

                def build(seed):
                    rng = random.Random(seed)
                    return cache_token({"j": rng.random()})
            """,
        })
        assert taint_hits(report) == []

    def test_fs_order_into_solver_and_sorted_neutralizes(self, analyze_tree):
        report = analyze_tree({
            "src/repro/ilp/sched.py": """\
                import os

                def solve_schedule(items):
                    return items

                def bad(d):
                    return solve_schedule(os.listdir(d))

                def good(d):
                    return solve_schedule(sorted(os.listdir(d)))
            """,
        })
        hits = taint_hits(report)
        assert len(hits) == 1
        assert "filesystem-ordering" in hits[0].message
        assert "decision-plan solving" in hits[0].message

    def test_sorted_does_not_launder_wall_clock(self, analyze_tree):
        report = analyze_tree({
            "src/repro/core/loop.py": """\
                import time
                from repro import obs

                def tick():
                    obs.emit("campaign.end", ts=sorted([time.time()]))
            """,
        })
        assert len(taint_hits(report)) == 1


class TestTaintSuppression:
    def test_justified_suppression_drops_finding(self, analyze_tree):
        report = analyze_tree({
            "src/repro/core/loop.py": """\
                import time
                from repro import obs

                def tick():
                    obs.emit("campaign.end", s=time.time())  # repro: allow[determinism-taint] -- diagnostic-only payload key
            """,
        })
        assert taint_hits(report) == []

    def test_bare_suppression_does_not_suppress(self, analyze_tree):
        report = analyze_tree({
            "src/repro/core/loop.py": """\
                import time
                from repro import obs

                def tick():
                    obs.emit("campaign.end", s=time.time())  # repro: allow[determinism-taint]
            """,
        })
        assert len(taint_hits(report)) == 1
