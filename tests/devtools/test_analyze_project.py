"""Tests for the analyzer's project index and call graph."""

import pathlib

from repro.devtools.analyze.callgraph import CallGraph
from repro.devtools.analyze.project import ProjectIndex, module_name


class TestModuleNaming:
    def test_source_layout(self):
        assert module_name("src/repro/sim/runner.py") == "repro.sim.runner"

    def test_package_init(self):
        assert module_name("src/repro/obs/__init__.py") == "repro.obs"


class TestProjectIndex:
    def test_functions_classes_and_mutables(self, make_tree):
        root = make_tree({
            "src/repro/sim/mod.py": """\
                from dataclasses import dataclass

                _CACHE = {}
                FROZEN = ("a", "b")

                @dataclass(frozen=True)
                class Spec:
                    device: str
                    rounds: int = 3

                    def key(self):
                        return (self.device, self.rounds)

                def top():
                    return Spec("cpu").key()
            """,
        })
        project = ProjectIndex.load([root / "src"], root)
        module = project.modules["repro.sim.mod"]
        assert module.mutables == {"_CACHE": 3}
        assert "repro.sim.mod.top" in project.functions
        spec = project.classes["repro.sim.mod.Spec"]
        assert spec.is_dataclass
        assert [f.name for f in spec.fields] == ["device", "rounds"]
        assert project.resolve_method("repro.sim.mod.Spec", "key") == (
            "repro.sim.mod.Spec.key"
        )

    def test_key_exempt_markers_parsed(self, make_tree):
        root = make_tree({
            "src/repro/sim/mod.py": """\
                from dataclasses import dataclass

                @dataclass
                class Spec:
                    device: str
                    label: str = ""  # key_exempt: display only
                    tag: str = ""  # key_exempt
            """,
        })
        project = ProjectIndex.load([root / "src"], root)
        fields = {
            f.name: f for f in project.classes["repro.sim.mod.Spec"].fields
        }
        assert not fields["device"].has_marker
        assert fields["label"].has_marker
        assert fields["label"].exempt_reason == "display only"
        assert fields["tag"].has_marker
        assert fields["tag"].exempt_reason is None

    def test_parse_failure_recorded_not_raised(self, make_tree):
        root = make_tree({"src/repro/bad.py": "def broken(:\n"})
        project = ProjectIndex.load([root / "src"], root)
        assert project.modules == {}
        assert len(project.parse_failures) == 1
        assert project.parse_failures[0][0] == "src/repro/bad.py"


class TestCallGraph:
    def test_edges_through_aliases_and_annotations(self, make_tree):
        root = make_tree({
            "src/repro/a.py": """\
                def helper():
                    return 1
            """,
            "src/repro/b.py": """\
                from repro.a import helper as h
                from repro import a

                class Spec:
                    def run(self):
                        return h() + a.helper()

                def drive(spec: Spec):
                    return spec.run()
            """,
        })
        project = ProjectIndex.load([root / "src"], root)
        graph = CallGraph.build(project)
        assert graph.edges["repro.b.Spec.run"] == ("repro.a.helper",)
        assert graph.edges["repro.b.drive"] == ("repro.b.Spec.run",)

    def test_relative_import_resolves_to_edge(self, make_tree):
        root = make_tree({
            "src/repro/pkg/inner.py": """\
                def leaf():
                    return 0
            """,
            "src/repro/pkg/outer.py": """\
                from .inner import leaf

                def caller():
                    return leaf()
            """,
        })
        project = ProjectIndex.load([root / "src"], root)
        graph = CallGraph.build(project)
        assert graph.edges["repro.pkg.outer.caller"] == ("repro.pkg.inner.leaf",)

    def test_reachability_with_witness_chain(self, make_tree):
        root = make_tree({
            "src/repro/m.py": """\
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 1

                def island():
                    return 2
            """,
        })
        project = ProjectIndex.load([root / "src"], root)
        graph = CallGraph.build(project)
        parents = graph.reachable(["repro.m.a"])
        assert set(parents) == {"repro.m.a", "repro.m.b", "repro.m.c"}
        assert graph.chain(parents, "repro.m.c") == [
            "repro.m.a", "repro.m.b", "repro.m.c",
        ]

    def test_attr_loads_closure(self, make_tree):
        root = make_tree({
            "src/repro/m.py": """\
                def key(spec):
                    return (spec.device, extra(spec))

                def extra(spec):
                    return spec.rounds
            """,
        })
        project = ProjectIndex.load([root / "src"], root)
        graph = CallGraph.build(project)
        loads = graph.attr_loads_closure(["repro.m.key"])
        assert {"device", "rounds"} <= loads

    def test_real_tree_worker_chain_resolves(self):
        repo = pathlib.Path(__file__).resolve().parents[2]
        project = ProjectIndex.load([repo / "src" / "repro"], repo)
        graph = CallGraph.build(project)
        parents = graph.reachable(["repro.sim.executor._compute_spec"])
        # The annotated-parameter hop: _compute_spec(spec: CampaignSpec)
        # -> CampaignSpec.run -> run_campaign.
        assert "repro.sim.runner.run_campaign" in parents
