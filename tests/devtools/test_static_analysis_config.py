"""Smoke tests for the static-analysis wiring (pyproject, CI, pre-commit).

The runtime container deliberately ships neither ruff nor mypy — they are
CI-only optional dependencies — so the mypy run is skipped when the tool
is absent and the remaining tests pin the *configuration* so a refactor
cannot silently drop the strictness ratchet.
"""

import pathlib
import shutil
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
PYPROJECT = REPO / "pyproject.toml"

#: The determinism-critical packages checked with the strict flag set.
STRICT_PACKAGES = (
    "repro.core",
    "repro.ilp",
    "repro.sim",
    "repro.obs",
    "repro.service",
    "repro.federated",
    "repro.faults",
    "repro.servertune",
)


def pyproject_text() -> str:
    return PYPROJECT.read_text()


class TestPyprojectConfig:
    def test_mypy_section_present_with_strict_overrides(self):
        text = pyproject_text()
        assert "[tool.mypy]" in text
        assert "[[tool.mypy.overrides]]" in text
        for package in STRICT_PACKAGES:
            assert f'"{package}.*"' in text
        # The load-bearing strict flags (mypy rejects `strict = true` in
        # per-module overrides, so these are enumerated).
        for flag in (
            "disallow_untyped_defs",
            "disallow_incomplete_defs",
            "disallow_any_generics",
            "strict_equality",
        ):
            assert flag in text

    def test_mypy_config_parses_as_toml(self):
        if sys.version_info < (3, 11):
            pytest.skip("tomllib requires python >= 3.11")
        import tomllib

        with PYPROJECT.open("rb") as handle:
            config = tomllib.load(handle)
        mypy = config["tool"]["mypy"]
        assert mypy["python_version"] == "3.9"
        assert mypy["mypy_path"] == "src"
        strict = next(
            o for o in mypy["overrides"]
            if "repro.core.*" in o.get("module", [])
        )
        assert set(strict["module"]) == {f"{p}.*" for p in STRICT_PACKAGES}
        assert strict["disallow_untyped_defs"] is True
        assert strict["disallow_any_generics"] is True

    def test_ruff_select_includes_bugbear_and_pyupgrade(self):
        text = pyproject_text()
        for code in ('"E"', '"F"', '"W"', '"B"', '"C4"', '"UP"'):
            assert code in text
        # Optional/Union stay spelled out: py39 runtime positions.
        assert '"UP007"' in text and '"UP045"' in text

    def test_lint_optional_dependency_group(self):
        text = pyproject_text()
        assert "lint = [" in text
        assert "ruff" in text and "mypy" in text

    def test_package_ships_py_typed_marker(self):
        assert (REPO / "src" / "repro" / "py.typed").exists()


class TestPreCommit:
    def test_config_exists_and_mirrors_ci(self):
        text = (REPO / ".pre-commit-config.yaml").read_text()
        assert "ruff" in text
        assert "mypy" in text
        assert "repro lint" in text
        assert "repro analyze --ratchet" in text

    def test_mypy_hook_scopes_to_strict_packages(self):
        text = (REPO / ".pre-commit-config.yaml").read_text()
        for package in STRICT_PACKAGES:
            assert package.split(".", 1)[1] in text


class TestCiWorkflow:
    def test_static_analysis_job_runs_all_four_gates(self):
        text = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "static-analysis" in text
        assert "ruff check" in text
        assert "mypy" in text
        assert "lint --format json" in text
        assert "analyze --ratchet" in text

    def test_mypy_step_covers_every_strict_package(self):
        text = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        for package in STRICT_PACKAGES:
            assert f"-p {package}" in text

    def test_analyze_determinism_and_sarif_steps(self):
        text = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "cmp analyze_a.json analyze_b.json" in text
        assert "--sarif repro-analyze.sarif" in text


class TestMypyStrictPackages:
    @pytest.mark.skipif(
        shutil.which("mypy") is None,
        reason="mypy is a CI-only optional dependency ([project.optional-"
        "dependencies] lint); the runtime container does not ship it",
    )
    def test_strict_packages_pass(self):
        result = subprocess.run(
            [
                "mypy",
                "--config-file", str(PYPROJECT),
                *(arg for p in STRICT_PACKAGES for arg in ("-p", p)),
            ],
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stdout + result.stderr
