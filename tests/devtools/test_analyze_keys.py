"""Key-completeness checker: every spec field reaches its cache key."""


def key_hits(report):
    return [f for f in report.findings if f.checker == "key-completeness"]


class TestKeyCompleteness:
    def test_dropped_field_is_flagged(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class CampaignSpec:
                    device: str
                    task: str
                    debug_label: str = ""

                    def key(self):
                        return (self.device, self.task)
            """,
        })
        hits = key_hits(report)
        assert len(hits) == 1
        assert "debug_label" in hits[0].message
        assert "key_exempt" in hits[0].message
        assert hits[0].line == 7  # the field definition line

    def test_field_consumed_transitively_passes(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class CampaignSpec:
                    device: str
                    rounds: int = 100

                    def key(self):
                        return (self.device, self._tail())

                    def _tail(self):
                        return self.rounds
            """,
        })
        assert key_hits(report) == []

    def test_exempt_marker_with_reason_passes(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class CampaignSpec:
                    device: str
                    debug_label: str = ""  # key_exempt: display only, never affects results

                    def key(self):
                        return (self.device,)
            """,
        })
        assert key_hits(report) == []

    def test_bare_marker_needs_justification(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class CampaignSpec:
                    device: str
                    debug_label: str = ""  # key_exempt

                    def key(self):
                        return (self.device,)
            """,
        })
        hits = key_hits(report)
        assert len(hits) == 1
        assert "needs a justification" in hits[0].message

    def test_missing_key_function_is_flagged(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class CampaignSpec:
                    device: str
            """,
        })
        hits = key_hits(report)
        assert len(hits) == 1
        assert "missing function" in hits[0].message
        assert "CampaignSpec.key" in hits[0].message

    def test_absent_contract_dataclasses_are_skipped(self, analyze_tree):
        # A tree with none of the contract dataclasses: nothing to check.
        report = analyze_tree({
            "src/repro/sim/other.py": """\
                def f():
                    return 1
            """,
        })
        assert key_hits(report) == []

    def test_request_token_contract(self, analyze_tree):
        report = analyze_tree({
            "src/repro/service/api.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class DecisionRequest:
                    device: str
                    jobs: int
                    client_id: str = ""  # key_exempt: routing metadata only
                    priority: int = 0

                    def token(self):
                        return {"device": self.device, "jobs": self.jobs}
            """,
        })
        hits = key_hits(report)
        assert len(hits) == 1
        assert "priority" in hits[0].message
        assert "client_id" not in hits[0].message
