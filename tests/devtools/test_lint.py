"""Tests for the ``repro lint`` engine and every built-in rule.

Each rule gets a flagging and a non-flagging fixture, built as a throwaway
repo tree (``<tmp>/pyproject.toml`` + ``<tmp>/src/repro/...``) so the
repo-root-relative include/exempt scopes resolve exactly as they do on the
real tree.
"""

import json
import pathlib
import textwrap

import pytest

from repro.devtools.lint import (
    LINT_REPORT_VERSION,
    Rule,
    get_rule,
    iter_rules,
    lint_paths,
    register_rule,
)
from repro.devtools.lint.engine import find_repo_root
from repro.errors import ConfigurationError

RULE_IDS = (
    "assert-validation",
    "float-equality",
    "obs-event-kind",
    "pickle-safety",
    "unseeded-random",
    "wall-clock",
)


def make_repo(tmp_path: pathlib.Path, files: dict) -> pathlib.Path:
    """Lay out a miniature repo so root-relative rule scopes apply."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    return tmp_path


def run_lint(root: pathlib.Path, select=None):
    return lint_paths([root / "src"], root=root, select=select)


def rule_hits(report, rule_id: str):
    return [v for v in report.violations if v.rule == rule_id]


class TestRegistry:
    def test_all_builtin_rules_registered(self):
        assert tuple(rule.id for rule in iter_rules()) == RULE_IDS

    def test_every_rule_documents_itself(self):
        for rule in iter_rules():
            assert rule.summary
            assert len(rule.rationale) > 40  # a real sentence, not a stub
            assert rule.include

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            register_rule(get_rule("wall-clock"))

    def test_reserved_ids_rejected(self):
        stub = Rule(
            id="suppression", summary="s", rationale="r", check=lambda _s: []
        )
        with pytest.raises(ConfigurationError, match="reserved"):
            register_rule(stub)

    def test_unknown_rule_lookup_fails_with_candidates(self):
        with pytest.raises(ConfigurationError, match="wall-clock"):
            get_rule("no-such-rule")


class TestWallClock:
    def test_flags_direct_and_aliased_reads(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/sim/runner.py": """\
                import time
                from time import perf_counter as pc

                def stamp():
                    return time.time() + pc()
            """,
        })
        hits = rule_hits(run_lint(root, select=["wall-clock"]), "wall-clock")
        assert len(hits) == 2
        assert "time.time" in hits[0].message
        assert hits[0].path == "src/repro/sim/runner.py"

    def test_flags_datetime_now(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/run.py": """\
                import datetime

                def stamp():
                    return datetime.datetime.now()
            """,
        })
        assert len(rule_hits(run_lint(root, select=["wall-clock"]), "wall-clock")) == 1

    def test_exempt_timing_modules_are_skipped(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/obs/metrics.py": """\
                import time

                def span():
                    return time.perf_counter()
            """,
        })
        assert run_lint(root, select=["wall-clock"]).ok

    def test_local_variable_named_time_is_not_the_module(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/run.py": """\
                def simulated(clock):
                    time = clock
                    return time.time()
            """,
        })
        assert run_lint(root, select=["wall-clock"]).ok


class TestUnseededRandom:
    def test_flags_global_state_apis(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/bayesopt/warmup.py": """\
                import random
                import numpy as np

                def draw():
                    return random.random() + np.random.rand()
            """,
        })
        hits = rule_hits(
            run_lint(root, select=["unseeded-random"]), "unseeded-random"
        )
        assert len(hits) == 2

    def test_seeded_generator_constructors_allowed(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/bayesopt/warmup.py": """\
                import random
                import numpy as np

                def generators(seed):
                    return np.random.default_rng(seed), random.Random(seed)
            """,
        })
        assert run_lint(root, select=["unseeded-random"]).ok

    def test_method_calls_on_a_generator_allowed(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/bayesopt/warmup.py": """\
                def draw(rng):
                    return rng.random()
            """,
        })
        assert run_lint(root, select=["unseeded-random"]).ok


class TestAssertValidation:
    def test_flags_assert(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/ilp/check.py": """\
                def validate(x):
                    assert x is not None, "missing"
                    return x
            """,
        })
        hits = rule_hits(
            run_lint(root, select=["assert-validation"]), "assert-validation"
        )
        assert len(hits) == 1
        assert "python -O" in hits[0].message

    def test_explicit_raise_is_clean(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/ilp/check.py": """\
                def validate(x):
                    if x is None:
                        raise ValueError("missing")
                    return x
            """,
        })
        assert run_lint(root, select=["assert-validation"]).ok


class TestFloatEquality:
    def test_flags_eq_and_ne_on_objective_names(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/front.py": """\
                def same(a, b):
                    return a.latency == b.latency or a.energy != b.energy
            """,
        })
        hits = rule_hits(
            run_lint(root, select=["float-equality"]), "float-equality"
        )
        assert len(hits) == 2

    def test_ordering_comparisons_and_other_names_clean(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/front.py": """\
                def dominates(a, b, rounds):
                    return a.latency <= b.latency and rounds == 3
            """,
        })
        assert run_lint(root, select=["float-equality"]).ok


class TestPickleSafety:
    def test_flags_lambda_into_spec_and_submit(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/sim/plan.py": """\
                def build(pool, CampaignSpec):
                    spec = CampaignSpec(on_job=lambda r: r)
                    pool.submit(lambda: 1)
                    return spec
            """,
        })
        hits = rule_hits(run_lint(root, select=["pickle-safety"]), "pickle-safety")
        assert len(hits) == 2
        assert "picklable" in hits[0].message

    def test_module_level_callables_clean(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/sim/plan.py": """\
                def on_job(r):
                    return r

                def build(pool, CampaignSpec):
                    pool.submit(on_job)
                    return CampaignSpec(on_job=on_job)
            """,
        })
        assert run_lint(root, select=["pickle-safety"]).ok

    def test_lambda_elsewhere_is_fine(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/sim/plan.py": """\
                def order(rows):
                    return sorted(rows, key=lambda r: r[0])
            """,
        })
        assert run_lint(root, select=["pickle-safety"]).ok


class TestObsEventKind:
    def test_flags_unregistered_kind(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/loop.py": """\
                from repro import obs

                def tick():
                    obs.emit("bogus.kind", 0.0, value=1)
            """,
        })
        hits = rule_hits(run_lint(root, select=["obs-event-kind"]), "obs-event-kind")
        assert len(hits) == 1
        assert "bogus.kind" in hits[0].message

    def test_flags_dynamic_kind_and_payload_unpacking(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/loop.py": """\
                from repro import obs

                def tick(kind, payload):
                    obs.emit(kind, 0.0)
                    obs.emit("controller.round", 0.0, **payload)
            """,
        })
        hits = rule_hits(run_lint(root, select=["obs-event-kind"]), "obs-event-kind")
        assert len(hits) == 2

    def test_registered_literal_kind_clean(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/loop.py": """\
                from repro import obs

                def tick(t):
                    obs.emit("controller.round", t, round=1)
            """,
        })
        assert run_lint(root, select=["obs-event-kind"]).ok

    def test_fault_and_recovery_kinds_registered(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/faults/loop.py": """\
                from repro import obs

                def tick(t):
                    obs.emit("chaos.schedule", t, faults=3)
                    obs.emit("fault.injected", t, round=2, fault="straggler")
                    obs.emit("fault.cleared", t, round=4, fault="straggler")
                    obs.emit("recovery.checkpoint", t, round=2)
                    obs.emit("recovery.restore", t, round=3, kinds=["sensor_spike"])
                    obs.emit("recovery.escalation", t, round=3, rounds=2)
                    obs.emit("server.round_failed", t, round=5)
                    obs.emit("server.aggregation_fallback", t, round=6)
            """,
        })
        assert run_lint(root, select=["obs-event-kind"]).ok

    def test_mbo_fastpath_kinds_registered(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/bayesopt/loop.py": """\
                from repro import obs

                def tick(t):
                    obs.emit("mbo.jitter_escalated", t, where="refactorize",
                             size=60, jitter=1e-4, retries=1)
            """,
        })
        assert run_lint(root, select=["obs-event-kind"]).ok

    def test_misspelled_fault_kind_flagged(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/faults/loop.py": """\
                from repro import obs

                def tick(t):
                    obs.emit("fault.injectd", t, round=2)
            """,
        })
        hits = rule_hits(run_lint(root, select=["obs-event-kind"]), "obs-event-kind")
        assert len(hits) == 1
        assert "fault.injectd" in hits[0].message

    def test_obs_package_itself_exempt(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/obs/runtime.py": """\
                def emit_via(log, kind, t):
                    log.emit(kind, t)
            """,
        })
        assert run_lint(root, select=["obs-event-kind"]).ok


class TestSuppressions:
    def test_justified_suppression_silences_the_line(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/ilp/check.py": """\
                def validate(x):
                    assert x  # repro: allow[assert-validation] -- perf-critical inner loop
                    return x
            """,
        })
        assert run_lint(root, select=["assert-validation"]).ok

    def test_bare_suppression_does_not_suppress_and_is_flagged(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/ilp/check.py": """\
                def validate(x):
                    assert x  # repro: allow[assert-validation]
                    return x
            """,
        })
        report = run_lint(root, select=["assert-validation"])
        assert len(rule_hits(report, "assert-validation")) == 1
        suppression_hits = rule_hits(report, "suppression")
        assert len(suppression_hits) == 1
        assert "justification" in suppression_hits[0].message

    def test_suppression_naming_unknown_rule_is_flagged(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/ilp/check.py": """\
                def ok():  # repro: allow[no-such-rule] -- because
                    return 1
            """,
        })
        hits = rule_hits(run_lint(root), "suppression")
        assert len(hits) == 1
        assert "unknown rule" in hits[0].message

    def test_multi_rule_suppression_on_one_line(self, tmp_path):
        # One line hit by two rules; one comma-list comment covers both.
        root = make_repo(tmp_path, {
            "src/repro/sim/probe.py": """\
                import random
                import time

                def probe():
                    return time.time() + random.random()  # repro: allow[wall-clock, unseeded-random] -- paired machine probe, not simulation state
            """,
        })
        report = run_lint(root, select=["wall-clock", "unseeded-random"])
        assert report.ok, report.render_human()

    def test_multi_rule_suppression_covers_only_listed_rules(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/sim/probe.py": """\
                import random
                import time

                def probe():
                    return time.time() + random.random()  # repro: allow[wall-clock] -- timing probe only
            """,
        })
        report = run_lint(root, select=["wall-clock", "unseeded-random"])
        assert len(rule_hits(report, "unseeded-random")) == 1
        assert rule_hits(report, "wall-clock") == []

    def test_bare_multi_rule_suppression_flags_each_id(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/sim/probe.py": """\
                import random
                import time

                def probe():
                    return time.time() + random.random()  # repro: allow[wall-clock, unseeded-random]
            """,
        })
        report = run_lint(root, select=["wall-clock", "unseeded-random"])
        assert len(rule_hits(report, "wall-clock")) == 1
        assert len(rule_hits(report, "unseeded-random")) == 1
        suppression_hits = rule_hits(report, "suppression")
        assert len(suppression_hits) == 2
        assert all("justification" in hit.message for hit in suppression_hits)

    def test_unknown_rule_inside_multi_rule_list_is_flagged(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/ilp/check.py": """\
                def validate(x):
                    assert x  # repro: allow[assert-validation, no-such-rule] -- inner loop
                    return x
            """,
        })
        report = run_lint(root)
        assert rule_hits(report, "assert-validation") == []
        hits = rule_hits(report, "suppression")
        assert len(hits) == 1
        assert "unknown rule 'no-such-rule'" in hits[0].message

    def test_analyzer_checker_ids_are_known_to_lint(self, tmp_path):
        # `repro analyze` suppressions share the comment syntax; lint
        # must not report them as unknown rules.
        root = make_repo(tmp_path, {
            "src/repro/sim/state.py": """\
                _MEMO = {}

                def prime(key):
                    _MEMO[key] = 1  # repro: allow[process-boundary] -- primed before fork
            """,
        })
        assert run_lint(root).ok

    def test_suppression_syntax_in_docstring_is_ignored(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/ilp/check.py": '''\
                """Docs may mention # repro: allow[wall-clock] without effect."""

                def ok():
                    return 1
            ''',
        })
        assert run_lint(root).ok


class TestEngine:
    def test_report_json_schema(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/bad.py": "def f():\n    assert True\n",
        })
        payload = json.loads(run_lint(root).render_json())
        assert payload["version"] == LINT_REPORT_VERSION
        assert payload["ok"] is False
        assert payload["checked_files"] == 1
        assert set(payload["rules"]) == set(RULE_IDS)
        (violation,) = payload["violations"]
        assert set(violation) == {"rule", "path", "line", "col", "message"}
        assert violation["rule"] == "assert-validation"
        assert violation["path"] == "src/repro/core/bad.py"

    def test_human_rendering_has_location_and_summary(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/bad.py": "def f():\n    assert True\n",
        })
        rendered = run_lint(root).render_human()
        assert "src/repro/core/bad.py:2:" in rendered
        assert "[assert-validation]" in rendered
        assert rendered.splitlines()[-1].startswith("repro lint: 1 violation(s)")

    def test_unparseable_file_reports_parse_error(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/broken.py": "def f(:\n",
        })
        hits = rule_hits(run_lint(root), "parse-error")
        assert len(hits) == 1
        assert not run_lint(root).ok

    def test_violations_sorted_by_location(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/a.py": "def f():\n    assert True\n    assert True\n",
            "src/repro/core/b.py": "def g():\n    assert True\n",
        })
        report = run_lint(root, select=["assert-validation"])
        keys = [(v.path, v.line) for v in report.violations]
        assert keys == sorted(keys)

    def test_scope_excludes_files_outside_src(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/core/ok.py": "def f():\n    return 1\n",
            "tests/test_x.py": "def test():\n    assert 1 == 1\n",
        })
        report = lint_paths([root / "src", root / "tests"], root=root)
        assert report.ok  # rules include only src/repro/**
        assert report.checked_files == 2

    def test_needs_at_least_one_path(self):
        with pytest.raises(ConfigurationError):
            lint_paths([])

    def test_find_repo_root_walks_to_pyproject(self, tmp_path):
        root = make_repo(tmp_path, {"src/repro/core/x.py": "A = 1\n"})
        assert find_repo_root(root / "src" / "repro" / "core" / "x.py") == root


class TestRealTree:
    def test_repo_head_is_clean(self):
        repo = find_repo_root(pathlib.Path(__file__))
        report = lint_paths([repo / "src"], root=repo)
        assert report.ok, report.render_human()
        assert report.checked_files > 100


class TestCli:
    def test_lint_violations_exit_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        root = make_repo(tmp_path, {
            "src/repro/core/bad.py": "def f():\n    assert True\n",
        })
        assert main(["lint", str(root / "src"), "--root", str(root)]) == 1
        assert "[assert-validation]" in capsys.readouterr().out

    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        root = make_repo(tmp_path, {
            "src/repro/core/ok.py": "def f():\n    return 1\n",
        })
        assert main(["lint", str(root / "src"), "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_lint_json_format_is_parseable(self, tmp_path, capsys):
        from repro.cli import main

        root = make_repo(tmp_path, {
            "src/repro/core/bad.py": "def f():\n    assert True\n",
        })
        code = main(
            ["lint", str(root / "src"), "--root", str(root), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == LINT_REPORT_VERSION
        assert payload["violations"]

    def test_lint_select_limits_rules(self, tmp_path, capsys):
        from repro.cli import main

        root = make_repo(tmp_path, {
            "src/repro/core/bad.py": "def f():\n    assert True\n",
        })
        code = main(
            ["lint", str(root / "src"), "--root", str(root),
             "--select", "wall-clock"]
        )
        assert code == 0  # the assert rule was not selected
        capsys.readouterr()

    def test_lint_unknown_rule_is_a_clean_cli_error(self, capsys):
        from repro.cli import main

        assert main(["lint", "--select", "no-such-rule"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out
