"""Shared fixtures for the devtools test suites.

Analyzer and lint tests both build throwaway miniature repos
(``<tmp>/pyproject.toml`` + ``<tmp>/src/repro/...``) so repo-root-
relative scopes, module-name derivation, and contract qualnames resolve
exactly as they do on the real tree.
"""

import pathlib
import textwrap

import pytest

from repro.devtools.analyze import analyze_paths


@pytest.fixture
def make_tree(tmp_path):
    """Factory: lay out a miniature repo, return its root."""

    def _make(files: dict) -> pathlib.Path:
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        for rel, text in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(text))
        return tmp_path

    return _make


@pytest.fixture
def analyze_tree(make_tree):
    """Factory: build a miniature repo and analyze its src/ tree."""

    def _run(files: dict):
        root = make_tree(files)
        return analyze_paths([root / "src"], root=root)

    return _run
