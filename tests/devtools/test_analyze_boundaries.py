"""Process-boundary checker: worker-reachable module-state writes."""


def boundary_hits(report):
    return [f for f in report.findings if f.checker == "process-boundary"]


class TestWorkerReachableWrites:
    def test_cross_module_write_two_hops_from_worker(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                from repro.sim import runner

                def _compute_spec(spec):
                    return runner.run(spec)
            """,
            "src/repro/sim/runner.py": """\
                _MEMO = {}

                def run(spec):
                    return _finish(spec)

                def _finish(spec):
                    _MEMO[spec] = 1
                    return 1
            """,
        })
        hits = boundary_hits(report)
        assert len(hits) == 1
        assert hits[0].path == "src/repro/sim/runner.py"
        assert "repro.sim.runner._MEMO" in hits[0].message
        assert (
            "repro.sim.executor._compute_spec -> repro.sim.runner.run "
            "-> repro.sim.runner._finish" in hits[0].message
        )

    def test_mutating_method_call_flagged(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                _SEEN = []

                def _compute_spec(spec):
                    _SEEN.append(spec)
                    return spec
            """,
        })
        hits = boundary_hits(report)
        assert len(hits) == 1
        assert "_SEEN" in hits[0].message

    def test_aliased_import_write_flagged(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/state.py": """\
                _TABLE = {}
            """,
            "src/repro/sim/executor.py": """\
                from repro.sim.state import _TABLE

                def _compute_spec(spec):
                    _TABLE[spec] = 1
                    return spec
            """,
        })
        hits = boundary_hits(report)
        assert len(hits) == 1
        assert "repro.sim.state._TABLE" in hits[0].message

    def test_global_rebinding_flagged(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                _MEMO = {}

                def _compute_spec(spec):
                    global _MEMO
                    _MEMO = {}
                    return spec
            """,
        })
        assert len(boundary_hits(report)) == 1


class TestNonViolations:
    def test_local_shadow_not_flagged(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                _MEMO = {}

                def _compute_spec(spec):
                    _MEMO = {}
                    _MEMO[spec] = 1
                    return _MEMO
            """,
        })
        assert boundary_hits(report) == []

    def test_unreachable_write_not_flagged(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                def _compute_spec(spec):
                    return spec
            """,
            "src/repro/sim/runner.py": """\
                _MEMO = {}

                def prime(spec):
                    _MEMO[spec] = 1
            """,
        })
        assert boundary_hits(report) == []

    def test_tree_without_roots_skips_checker(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/runner.py": """\
                _MEMO = {}

                def run(spec):
                    _MEMO[spec] = 1
            """,
        })
        assert boundary_hits(report) == []

    def test_justified_suppression_drops_finding(self, analyze_tree):
        report = analyze_tree({
            "src/repro/sim/executor.py": """\
                _MEMO = {}

                def _compute_spec(spec):
                    _MEMO[spec] = 1  # repro: allow[process-boundary] -- primed before fork, read-only after
                    return spec
            """,
        })
        assert boundary_hits(report) == []
