"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_overrides(self):
        args = build_parser().parse_args(["run", "fig9", "--rounds", "5", "--ratio", "3.0"])
        assert args.experiment == "fig9"
        assert args.rounds == 5
        assert args.ratio == 3.0

    def test_campaign_validates_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--controller", "dqn"])


class TestCommands:
    def test_list_shows_all_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for artifact in ("fig2", "fig9", "fig12", "tab3", "abl_guardian"):
            assert artifact in out

    def test_run_static_experiment(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "AGX" in out and "TX2" in out

    def test_run_campaign_experiment_with_overrides(self, capsys):
        assert main(["run", "tab1"]) == 0
        assert "2100" in capsys.readouterr().out

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_campaign_summary(self, capsys):
        code = main(
            ["campaign", "--controller", "performant", "--rounds", "2", "--task", "lstm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "training energy" in out
        assert "missed rounds" in out


class TestCacheCommand:
    @pytest.fixture(autouse=True)
    def _isolate_global_cache(self):
        from repro.sim import install_persistent_cache
        from repro.sim.runner import clear_campaign_cache

        clear_campaign_cache()
        yield
        clear_campaign_cache()
        install_persistent_cache(None)

    def test_stats_on_empty_directory(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "c")]) == 0
        assert "0" in capsys.readouterr().out

    def test_clear_on_empty_directory(self, tmp_path, capsys):
        assert main(["cache", "clear", "--cache-dir", str(tmp_path / "c")]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_stats_after_a_cached_campaign(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        args = [
            "campaign", "--controller", "performant", "--rounds", "2",
            "--task", "lstm", "--cache-dir", cache_dir,
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "1" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_action_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "nuke"])


class TestTraceCommand:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        """Record a small BoFL campaign trace through the real CLI path."""
        path = tmp_path_factory.mktemp("cli_trace") / "t.jsonl"
        code = main(
            ["campaign", "--controller", "bofl", "--task", "vit",
             "--rounds", "6", "--trace", str(path)]
        )
        assert code == 0
        return path

    def test_campaign_trace_records_events(self, trace_file, capsys):
        assert trace_file.exists()
        first = trace_file.read_text().splitlines()[0]
        assert "trace.header" in first

    def test_summary_view(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Event counts" in out
        assert "agx/vit/bofl" in out

    def test_tab3_view(self, trace_file, capsys):
        assert main(["trace", str(trace_file), "--view", "tab3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "# Pareto" in out

    def test_fig13_view(self, trace_file, capsys):
        assert main(["trace", str(trace_file), "--view", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 13a" in out
        assert "MBO energy share" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_trace_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "ok"}\n{broken\n')
        assert main(["trace", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_view_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "t.jsonl", "--view", "fig1"])

    def test_tab3_view_needs_a_bofl_campaign(self, tmp_path, capsys):
        path = tmp_path / "perf.jsonl"
        code = main(
            ["campaign", "--controller", "performant", "--rounds", "2",
             "--task", "lstm", "--trace", str(path)]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["trace", str(path), "--view", "tab3"]) == 1
        assert "no bofl campaign" in capsys.readouterr().err


class TestFleetCommand:
    #: Performant-only, two archetypes: two fast campaigns total.
    FAST = [
        "--clients", "6", "--rounds", "2", "--archetypes", "2",
        "--controllers", "performant", "--workers", "1",
    ]

    def test_run_parses_fleet_options(self):
        args = build_parser().parse_args(
            ["fleet", "run", "--mode", "async", "--buffer", "8", "--chaos", "0.2"]
        )
        assert args.fleet_command == "run"
        assert args.mode == "async"
        assert args.buffer == 8
        assert args.chaos == 0.2

    def test_mode_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "run", "--mode", "firehose"])

    def test_report_requires_a_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "report"])

    def test_run_prints_the_scorecard(self, capsys):
        assert main(["fleet", "run", *self.FAST]) == 0
        out = capsys.readouterr().out
        for key in ("mode", "clients", "aggregations", "total_energy"):
            assert key in out

    def test_trace_round_trips_through_report(self, tmp_path, capsys):
        trace = tmp_path / "fleet.jsonl"
        assert main(["fleet", "run", *self.FAST, "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["fleet", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "fleet.start" in out
        assert "mode=sync" in out

    def test_trace_is_seed_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["fleet", "run", *self.FAST, "--trace", str(a)]) == 0
        assert main(["fleet", "run", *self.FAST, "--trace", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_report_on_fleetless_trace_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "perf.jsonl"
        assert main(
            ["campaign", "--controller", "performant", "--rounds", "2",
             "--task", "lstm", "--trace", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["fleet", "report", str(path)]) == 1
        assert "no fleet events" in capsys.readouterr().err


class TestServiceCommands:
    def test_loadtest_parses_options(self):
        args = build_parser().parse_args(
            ["loadtest", "--clients", "24", "--passes", "3", "--rate", "100",
             "--timeout", "0.1", "--max-queue", "32", "--cache-entries", "64"]
        )
        assert args.clients == 24
        assert args.passes == 3
        assert args.rate == 100.0
        assert args.timeout == 0.1
        assert args.max_queue == 32
        assert args.cache_entries == 64

    def test_loadtest_prints_summary_and_writes_outputs(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        log = tmp_path / "decisions.jsonl"
        code = main(
            ["loadtest", "--clients", "12", "--rounds", "2", "--passes", "2",
             "--seed", "7", "--report", str(report), "--decision-log", str(log)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Loadtest summary" in out
        assert "cache hit rate" in out
        assert report.is_file() and log.is_file()
        assert len(log.read_text().splitlines()) == 12 * 2 * 2

    def test_loadtest_decision_log_is_byte_deterministic(self, tmp_path, capsys):
        logs = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            assert main(
                ["loadtest", "--clients", "12", "--rounds", "2", "--seed", "7",
                 "--decision-log", str(path)]
            ) == 0
            logs.append(path.read_bytes())
        capsys.readouterr()
        assert logs[0] == logs[1]

    def test_loadtest_trace_replays_through_from_trace(self, tmp_path, capsys):
        trace = tmp_path / "service.jsonl"
        assert main(
            ["loadtest", "--clients", "12", "--rounds", "2", "--seed", "7",
             "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["loadtest", "--from-trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Service trace summary" in out
        assert "decisions        : 48" in out

    def test_serve_answers_a_request_file(self, tmp_path, capsys):
        stream = tmp_path / "requests.jsonl"
        stream.write_text(
            '{"device": "agx", "task": "vit", "jobs": 50, "deadline": 60.0, '
            '"client_id": "c0"}\n'
            '{"device": "agx", "task": "vit", "jobs": 50, "deadline": 60.0, '
            '"client_id": "c1"}\n'
        )
        assert main(["serve", str(stream)]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines() if line]
        assert len(lines) == 2
        assert lines[0]["source"] == "computed"
        assert lines[0]["request_hash"] == lines[1]["request_hash"]
        assert "served 2 decision(s)" in captured.err

    def test_serve_rejects_an_empty_stream(self, tmp_path, capsys):
        stream = tmp_path / "empty.jsonl"
        stream.write_text("\n")
        assert main(["serve", str(stream)]) == 1
        assert "empty" in capsys.readouterr().err

    def test_serve_rejects_malformed_lines(self, tmp_path, capsys):
        stream = tmp_path / "bad.jsonl"
        stream.write_text('{"device": "agx"}\n')
        assert main(["serve", str(stream)]) == 1
        assert "request line 1" in capsys.readouterr().err


class TestServertuneCommand:
    #: Two archetypes, two members, one generation: three fast evaluations.
    FAST = [
        "--clients", "6", "--rounds", "2", "--archetypes", "2",
        "--population", "2", "--generations", "1", "--workers", "1",
    ]

    def test_run_parses_options(self):
        args = build_parser().parse_args(
            ["servertune", "run", "--population", "6", "--generations", "4",
             "--pbt-seed", "3", "--controllers", "fedgpo",
             "--alpha-energy", "0.7", "--alpha-time", "0.3"]
        )
        assert args.servertune_command == "run"
        assert args.population == 6
        assert args.generations == 4
        assert args.pbt_seed == 3
        assert args.controllers == "fedgpo"
        assert args.alpha_energy == 0.7

    def test_report_requires_a_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["servertune", "report"])

    def test_run_prints_population_and_frontier(self, capsys):
        assert main(["servertune", "run", *self.FAST]) == 0
        out = capsys.readouterr().out
        for key in ("PBT", "baseline (static)", "frontier (energy/agg"):
            assert key in out

    def test_frontier_round_trips_through_report(self, tmp_path, capsys):
        frontier = tmp_path / "frontier.json"
        assert main(
            ["servertune", "run", *self.FAST, "--frontier", str(frontier)]
        ) == 0
        run_out = capsys.readouterr().out
        assert main(["servertune", "report", str(frontier)]) == 0
        assert capsys.readouterr().out == run_out

    def test_trace_is_seed_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["servertune", "run", *self.FAST, "--trace", str(a)]) == 0
        assert main(["servertune", "run", *self.FAST, "--trace", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_state_file_resumes(self, tmp_path, capsys):
        state = tmp_path / "state.json"
        assert main(
            ["servertune", "run", *self.FAST, "--state", str(state)]
        ) == 0
        assert state.is_file()
        capsys.readouterr()
        assert main(
            ["servertune", "run", *self.FAST[:-4], "--generations", "2",
             "--workers", "1", "--state", str(state)]
        ) == 0
        captured = capsys.readouterr()
        assert "resuming from" in captured.err
        assert json.loads(state.read_text())["next_generation"] == 2

    def test_report_rejects_a_non_frontier_file(self, tmp_path, capsys):
        path = tmp_path / "not_frontier.json"
        path.write_text('{"kind": "something_else"}\n')
        assert main(["servertune", "report", str(path)]) == 1
        assert capsys.readouterr().err
