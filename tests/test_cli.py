"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_overrides(self):
        args = build_parser().parse_args(["run", "fig9", "--rounds", "5", "--ratio", "3.0"])
        assert args.experiment == "fig9"
        assert args.rounds == 5
        assert args.ratio == 3.0

    def test_campaign_validates_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--controller", "dqn"])


class TestCommands:
    def test_list_shows_all_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for artifact in ("fig2", "fig9", "fig12", "tab3", "abl_guardian"):
            assert artifact in out

    def test_run_static_experiment(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "AGX" in out and "TX2" in out

    def test_run_campaign_experiment_with_overrides(self, capsys):
        assert main(["run", "tab1"]) == 0
        assert "2100" in capsys.readouterr().out

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_campaign_summary(self, capsys):
        code = main(
            ["campaign", "--controller", "performant", "--rounds", "2", "--task", "lstm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "training energy" in out
        assert "missed rounds" in out
