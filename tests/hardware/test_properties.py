"""Property-based tests (hypothesis) for the hardware surfaces.

Invariants that must hold for any in-space configuration and any valid
calibration — the physics sanity of the simulated testbed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.perfmodel import AnalyticPerformanceModel, CalibrationTarget
from tests.conftest import build_tiny_spec, build_tiny_workload

SPEC = build_tiny_spec()
MODEL = build_tiny_workload().performance_model(SPEC)
CONFIGS = SPEC.space.all_configurations()

config_indices = st.integers(0, len(CONFIGS) - 1)


@given(index=config_indices)
@settings(max_examples=90, deadline=None)
def test_latency_at_least_overhead_plus_bottleneck(index):
    config = CONFIGS[index]
    busy = MODEL.busy_times(config)
    assert MODEL.latency(config) >= max(busy) - 1e-12


@given(index=config_indices)
@settings(max_examples=90, deadline=None)
def test_energy_at_least_floor_times_latency(index):
    config = CONFIGS[index]
    latency = MODEL.latency(config)
    floor = MODEL.power.floor_power()
    assert MODEL.energy(config) >= floor * latency - 1e-12


@given(index=config_indices, axis=st.integers(0, 2))
@settings(max_examples=90, deadline=None)
def test_raising_one_clock_never_slows_a_job(index, axis):
    config = CONFIGS[index]
    table = SPEC.space.tables[axis]
    step = SPEC.space.indices_of(config)[axis]
    if step + 1 >= len(table):
        return
    clocks = list(config.as_tuple())
    clocks[axis] = table.frequencies[step + 1]
    faster = SPEC.space.snap(*clocks)
    assert MODEL.latency(faster) <= MODEL.latency(config) + 1e-12


@given(index=config_indices)
@settings(max_examples=60, deadline=None)
def test_average_power_within_physical_envelope(index):
    config = CONFIGS[index]
    power = MODEL.energy(config) / MODEL.latency(config)
    floor = MODEL.power.floor_power()
    x_max = SPEC.space.max_configuration()
    peak = MODEL.energy(x_max) / MODEL.latency(x_max)
    assert floor - 1e-9 <= power <= peak * 3.0


def _simplex3(draw):
    """Three positive shares summing to one exactly."""
    raw = np.array([draw(st.floats(0.1, 1.0)) for _ in range(3)])
    raw = raw / raw.sum()
    return (float(raw[0]), float(raw[1]), float(1.0 - raw[0] - raw[1]))


@st.composite
def calibration_targets(draw):
    latency = draw(st.floats(0.02, 0.5))
    floor = SPEC.static_watts + sum(SPEC.idle_watts)
    energy = draw(st.floats(floor * latency * 1.3, floor * latency * 20))
    return CalibrationTarget(
        latency_at_max=latency,
        energy_at_max=energy,
        busy_shares=_simplex3(draw),
        dynamic_split=_simplex3(draw),
        serial_fraction=draw(st.floats(0.0, 0.9)),
    )


@given(target=calibration_targets())
@settings(max_examples=40, deadline=None)
def test_any_valid_calibration_hits_its_anchors(target):
    model = AnalyticPerformanceModel(SPEC, target)
    x_max = SPEC.space.max_configuration()
    assert model.latency(x_max) == pytest.approx(target.latency_at_max, rel=1e-6)
    assert model.energy(x_max) == pytest.approx(target.energy_at_max, rel=1e-6)


@given(target=calibration_targets())
@settings(max_examples=25, deadline=None)
def test_x_max_is_globally_fastest_for_any_calibration(target):
    model = AnalyticPerformanceModel(SPEC, target)
    latencies, energies = model.profile_space()
    x_max_idx = SPEC.space.flat_index_of(SPEC.space.max_configuration())
    assert latencies[x_max_idx] == pytest.approx(latencies.min())
    assert np.all(energies > 0)
