"""Unit tests for the measurement/process noise models."""

import numpy as np
import pytest

from repro.hardware.noise import MeasurementNoise, NoiselessMeasurement


class TestDeterminism:
    def test_same_key_same_draw(self, mild_noise):
        a = mild_noise.perturb_job([1, 2], 0.1, 2.0)
        b = mild_noise.perturb_job([1, 2], 0.1, 2.0)
        assert a == b

    def test_different_keys_differ(self, mild_noise):
        a = mild_noise.perturb_job([1, 2], 0.1, 2.0)
        b = mild_noise.perturb_job([1, 3], 0.1, 2.0)
        assert a != b

    def test_different_seeds_differ(self):
        a = MeasurementNoise(seed=1).perturb_job([0], 0.1, 2.0)
        b = MeasurementNoise(seed=2).perturb_job([0], 0.1, 2.0)
        assert a != b

    def test_job_and_measurement_streams_independent(self, mild_noise):
        job = mild_noise.perturb_job([5], 0.1, 2.0)
        meas = mild_noise.perturb_measurement([5], 0.1, 2.0, duration=5.0)
        assert job != meas


class TestErrorScaling:
    def test_short_windows_are_noisier(self, mild_noise):
        assert mild_noise.error_scale(0.2) > mild_noise.error_scale(5.0)

    def test_reference_duration_is_scale_one(self, mild_noise):
        assert mild_noise.error_scale(mild_noise.reference_duration) == pytest.approx(1.0)

    def test_scale_capped(self, mild_noise):
        assert mild_noise.error_scale(1e-9) <= mild_noise.max_error_scale * (
            mild_noise.settle_penalty
        )

    def test_long_windows_never_below_one(self, mild_noise):
        assert mild_noise.error_scale(1e6) == pytest.approx(1.0)

    def test_settling_overlap_inflates_error(self, mild_noise):
        clean = mild_noise.error_scale(2.0, settling_overlap=0.0)
        dirty = mild_noise.error_scale(2.0, settling_overlap=0.5)
        assert dirty > clean

    def test_empirical_std_shrinks_with_duration(self):
        noise = MeasurementNoise(seed=0)
        def spread(duration):
            draws = [
                noise.perturb_measurement([i], 1.0, 1.0, duration)[1]
                for i in range(300)
            ]
            return np.std(draws)
        assert spread(0.3) > 1.5 * spread(5.0)


class TestBounds:
    def test_factors_stay_positive(self):
        noise = MeasurementNoise(seed=0, sensor_energy_std=0.5, max_error_scale=6.0)
        for i in range(200):
            lat, en = noise.perturb_measurement([i], 1.0, 1.0, duration=0.01)
            assert lat > 0 and en > 0

    def test_rejects_negative_settle_time(self):
        with pytest.raises(ValueError):
            MeasurementNoise(settle_time=-1.0)


class TestNoiseless:
    def test_identity(self):
        noise = NoiselessMeasurement()
        assert noise.perturb_job([1], 0.25, 3.0) == (0.25, 3.0)
        assert noise.perturb_measurement([1], 0.25, 3.0, 0.1) == (0.25, 3.0)
