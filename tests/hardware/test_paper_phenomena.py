"""The §2.2 phenomenology: the calibrated surfaces must show every effect
the paper measures in Figs. 2-5 and anchor to Table 2.

These are the load-bearing tests of the hardware substitution: if they
pass, the blackbox the controller optimizes has the same qualitative
structure as the physical testbeds.
"""

import numpy as np
import pytest

from repro.hardware.devices import jetson_agx, jetson_tx2
from repro.workloads.zoo import lstm, resnet50, vit

AGX = jetson_agx()
TX2 = jetson_tx2()


def agx_model(workload):
    return workload.performance_model(AGX)


class TestFig2Spreads:
    """'8x faster training speed and 4x less energy consumption'."""

    @pytest.mark.parametrize("workload", [vit, resnet50, lstm])
    def test_latency_spread_large(self, workload):
        latencies, _ = agx_model(workload()).profile_space()
        assert latencies.max() / latencies.min() > 5.0

    @pytest.mark.parametrize("workload", [vit, resnet50, lstm])
    def test_energy_spread_large(self, workload):
        _, energies = agx_model(workload()).profile_space()
        assert energies.max() / energies.min() > 2.5


class TestFig3NonLinearity:
    """ViT vs GPU frequency at CPU 0.42 / 2.26 GHz."""

    @pytest.fixture(scope="class")
    def model(self):
        return agx_model(vit())

    def test_slow_cpu_caps_gpu_speedup(self, model):
        space = AGX.space
        # At the slow CPU, doubling the GPU clock barely helps ...
        slow_low = model.latency(space.snap(0.42, 0.7, space.mem.max))
        slow_high = model.latency(space.snap(0.42, 1.38, space.mem.max))
        # ... while at the fast CPU it helps a lot.
        fast_low = model.latency(space.snap(2.26, 0.7, space.mem.max))
        fast_high = model.latency(space.snap(2.26, 1.38, space.mem.max))
        assert slow_low / slow_high < 1.45  # diminishing returns
        assert fast_low / fast_high > 1.6  # strong returns

    def test_slow_cpu_halves_speed_at_high_gpu(self, model):
        space = AGX.space
        slow = model.latency(space.snap(0.42, 1.38, space.mem.max))
        fast = model.latency(space.snap(2.26, 1.38, space.mem.max))
        assert slow / fast > 1.5  # "slows down the training speed by half"

    def test_energy_advantage_of_slow_cpu_shrinks_with_gpu_clock(self, model):
        space = AGX.space
        advantage = {}
        for gpu in (0.7, 1.38):
            slow = model.energy(space.snap(0.42, gpu, space.mem.max))
            fast = model.energy(space.snap(2.26, gpu, space.mem.max))
            advantage[gpu] = fast - slow
        assert advantage[0.7] > 0.3  # slow CPU clearly better at low GPU clock
        assert advantage[1.38] < 0.15  # "saves no more energy" at high GPU clock
        assert advantage[1.38] < advantage[0.7]

    def test_energy_non_monotone_in_gpu_frequency(self, model):
        space = AGX.space
        energies = [
            model.energy(space.snap(2.26, g, space.mem.max))
            for g in space.gpu.frequencies
        ]
        diffs = np.diff(energies)
        assert np.any(diffs < 0) and np.any(diffs > 0)


class TestFig4ModelDependence:
    """Different networks respond to the CPU axis differently."""

    def test_resnet_latency_nearly_flat_in_cpu(self):
        model = agx_model(resnet50())
        space = AGX.space
        slow = model.latency(space.snap(0.65, space.gpu.max, space.mem.max))
        fast = model.latency(space.snap(1.72, space.gpu.max, space.mem.max))
        assert slow / fast < 1.2

    def test_lstm_latency_halves_with_cpu(self):
        model = agx_model(lstm())
        space = AGX.space
        slow = model.latency(space.snap(0.65, space.gpu.max, space.mem.max))
        fast = model.latency(space.snap(1.72, space.gpu.max, space.mem.max))
        assert slow / fast > 1.8

    def test_vit_latency_nearly_flat_over_plotted_range(self):
        model = agx_model(vit())
        space = AGX.space
        slow = model.latency(space.snap(0.65, space.gpu.max, space.mem.max))
        fast = model.latency(space.snap(1.72, space.gpu.max, space.mem.max))
        assert slow / fast < 1.3

    def test_resnet_energy_increases_with_cpu(self):
        model = agx_model(resnet50())
        space = AGX.space
        low = model.energy(space.snap(0.65, space.gpu.max, space.mem.max))
        high = model.energy(space.snap(1.72, space.gpu.max, space.mem.max))
        assert high > low

    def test_lstm_energy_decreases_with_cpu(self):
        model = agx_model(lstm())
        space = AGX.space
        low = model.energy(space.snap(0.65, space.gpu.max, space.mem.max))
        high = model.energy(space.snap(1.72, space.gpu.max, space.mem.max))
        assert high < low


class TestFig5HardwareDependence:
    """AGX/TX2 ratios at x_max (energy per Fig. 5; latency per Table 2)."""

    @pytest.mark.parametrize(
        "workload,energy_ratio",
        [(vit, 0.85), (resnet50, 0.70), (lstm, 0.80)],
    )
    def test_energy_ratios(self, workload, energy_ratio):
        profile = workload()
        e_agx = profile.performance_model(AGX).energy(AGX.space.max_configuration())
        e_tx2 = profile.performance_model(TX2).energy(TX2.space.max_configuration())
        assert e_agx / e_tx2 == pytest.approx(energy_ratio, rel=0.02)

    def test_improvement_not_uniform_across_models(self):
        ratios = {}
        for profile in (vit(), resnet50(), lstm()):
            t_agx = profile.performance_model(AGX).latency(AGX.space.max_configuration())
            t_tx2 = profile.performance_model(TX2).latency(TX2.space.max_configuration())
            ratios[profile.name] = t_agx / t_tx2
        assert ratios["resnet50"] < ratios["vit"] < ratios["lstm"]


class TestTable2Anchors:
    """T_min = W * T(x_max) must match Table 2 on both devices."""

    @pytest.mark.parametrize(
        "workload,device,jobs,t_min",
        [
            (vit, AGX, 200, 37.2),
            (resnet50, AGX, 180, 46.9),
            (lstm, AGX, 160, 46.1),
            (vit, TX2, 75, 36.0),
            (resnet50, TX2, 60, 49.2),
            (lstm, TX2, 80, 55.6),
        ],
    )
    def test_t_min(self, workload, device, jobs, t_min):
        model = workload().performance_model(device)
        measured = model.latency(device.space.max_configuration()) * jobs
        assert measured == pytest.approx(t_min, rel=1e-6)


class TestPaperEnergyBands:
    """Performant per-round energy must match the Figs. 9-10 levels."""

    @pytest.mark.parametrize(
        "workload,jobs,round_energy",
        [(vit, 200, 870.0), (resnet50, 180, 1100.0), (lstm, 160, 1000.0)],
    )
    def test_performant_round_energy(self, workload, jobs, round_energy):
        model = workload().performance_model(AGX)
        energy = model.energy(AGX.space.max_configuration()) * jobs
        assert energy == pytest.approx(round_energy, rel=0.02)

    @pytest.mark.parametrize("workload", [vit, resnet50, lstm])
    def test_energy_optimum_depth_matches_paper(self, workload):
        # The paper's fronts bottom out at roughly 70-80% of E(x_max).
        model = agx_model(workload())
        _, energies = model.profile_space()
        x_max_energy = model.energy(AGX.space.max_configuration())
        ratio = energies.min() / x_max_energy
        assert 0.60 < ratio < 0.85
