"""Unit tests for the voltage/power models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.power import DevicePowerModel, UnitPowerModel, VoltageCurve


@pytest.fixture()
def curve():
    return VoltageCurve(0.5, 2.0, 0.6, 1.2)


class TestVoltageCurve:
    def test_endpoints(self, curve):
        assert curve.voltage(0.5) == pytest.approx(0.6)
        assert curve.voltage(2.0) == pytest.approx(1.2)

    def test_monotone_in_frequency(self, curve):
        freqs = np.linspace(0.5, 2.0, 20)
        volts = curve.voltage(freqs)
        assert np.all(np.diff(volts) >= 0)

    def test_clamps_outside_range(self, curve):
        assert curve.voltage(0.1) == pytest.approx(0.6)
        assert curve.voltage(5.0) == pytest.approx(1.2)

    def test_switching_factor_superlinear(self, curve):
        # f * V(f)^2 must grow faster than f itself.
        low = curve.switching_factor(1.0)
        high = curve.switching_factor(2.0)
        assert high / low > 2.0

    def test_gamma_makes_midrange_cheaper(self):
        linear = VoltageCurve(0.5, 2.0, 0.6, 1.2, gamma=1.0)
        convex = VoltageCurve(0.5, 2.0, 0.6, 1.2, gamma=2.0)
        mid = 1.25
        assert convex.voltage(mid) < linear.voltage(mid)
        # endpoints are unchanged by gamma
        assert convex.voltage(0.5) == pytest.approx(linear.voltage(0.5))
        assert convex.voltage(2.0) == pytest.approx(linear.voltage(2.0))

    def test_vectorized_matches_scalar(self, curve):
        freqs = np.array([0.5, 1.0, 1.7])
        vec = curve.voltage(freqs)
        assert vec == pytest.approx([curve.voltage(f) for f in freqs])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"f_min": 2.0, "f_max": 1.0, "v_min": 0.6, "v_max": 1.2},
            {"f_min": 0.5, "f_max": 2.0, "v_min": 1.3, "v_max": 1.2},
            {"f_min": 0.5, "f_max": 2.0, "v_min": 0.6, "v_max": 1.2, "gamma": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            VoltageCurve(**kwargs)


class TestUnitPowerModel:
    def test_busy_power_includes_idle_floor(self, curve):
        unit = UnitPowerModel(curve, k=2.0, idle_watts=0.5)
        assert unit.busy_power(1.0) == pytest.approx(
            0.5 + 2.0 * curve.switching_factor(1.0)
        )

    def test_dynamic_power_scales_with_k(self, curve):
        small = UnitPowerModel(curve, k=1.0, idle_watts=0.0)
        big = UnitPowerModel(curve, k=3.0, idle_watts=0.0)
        assert big.dynamic_power(1.5) == pytest.approx(3 * small.dynamic_power(1.5))

    def test_rejects_bad_parameters(self, curve):
        with pytest.raises(ConfigurationError):
            UnitPowerModel(curve, k=0.0, idle_watts=0.1)
        with pytest.raises(ConfigurationError):
            UnitPowerModel(curve, k=1.0, idle_watts=-0.1)
        with pytest.raises(ConfigurationError):
            UnitPowerModel(curve, k=1.0, idle_watts=0.1, waiting_fraction=1.5)


class TestDevicePowerModel:
    @pytest.fixture()
    def model(self, curve):
        return DevicePowerModel(
            static_watts=1.0,
            cpu=UnitPowerModel(curve, 1.0, 0.1, waiting_fraction=0.1),
            gpu=UnitPowerModel(curve, 2.0, 0.2, waiting_fraction=0.25),
            mem=UnitPowerModel(curve, 0.5, 0.05, waiting_fraction=0.05),
        )

    def test_floor_power(self, model):
        assert model.floor_power() == pytest.approx(1.0 + 0.1 + 0.2 + 0.05)

    def test_job_energy_manual_check(self, model, curve):
        freqs = (1.0, 1.0, 1.0)
        busy = (0.5, 1.0, 0.2)
        duration = 1.0
        expected = model.floor_power() * duration
        for unit, t in zip((model.cpu, model.gpu, model.mem), busy):
            expected += unit.dynamic_power(1.0) * (
                t + unit.waiting_fraction * (duration - t)
            )
        assert model.job_energy(freqs, busy, duration) == pytest.approx(expected)

    def test_longer_job_same_busy_costs_more(self, model):
        freqs = (1.0, 1.0, 1.0)
        busy = (0.2, 0.4, 0.1)
        assert model.job_energy(freqs, busy, 1.0) > model.job_energy(freqs, busy, 0.5)

    def test_average_power_is_energy_over_time(self, model):
        freqs = (1.5, 0.8, 1.0)
        busy = (0.3, 0.6, 0.2)
        duration = 0.8
        assert model.average_power(freqs, busy, duration) == pytest.approx(
            model.job_energy(freqs, busy, duration) / duration
        )

    def test_vectorized_broadcasting(self, model):
        f = np.array([1.0, 1.5])
        busy = (np.array([0.2, 0.3]), np.array([0.5, 0.4]), np.array([0.1, 0.1]))
        duration = np.array([0.6, 0.7])
        out = model.job_energy((f, f, f), busy, duration)
        assert out.shape == (2,)
        scalar0 = model.job_energy(
            (1.0, 1.0, 1.0), (0.2, 0.5, 0.1), 0.6
        )
        assert out[0] == pytest.approx(scalar0)

    def test_rejects_negative_static(self, curve):
        unit = UnitPowerModel(curve, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            DevicePowerModel(-0.1, unit, unit, unit)
