"""Unit tests for the thermal model and its device integration."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.hardware import SimulatedDevice, ThermalModel
from repro.hardware.noise import NoiselessMeasurement
from tests.conftest import build_tiny_spec, build_tiny_workload


def model(**kwargs):
    defaults = {
        "r_th": 2.0, "tau_th": 100.0, "t_ambient": 25.0,
        "throttle_start": 60.0, "throttle_full": 80.0, "max_slowdown": 1.5,
    }
    defaults.update(kwargs)
    return ThermalModel(**defaults)


class TestThermalDynamics:
    def test_starts_at_ambient(self):
        assert model().temperature == 25.0

    def test_steady_state(self):
        assert model().steady_state(10.0) == pytest.approx(45.0)

    def test_exponential_approach(self):
        thermal = model()
        thermal.update(power=10.0, duration=100.0)  # one time constant
        expected = 45.0 + (25.0 - 45.0) * math.exp(-1.0)
        assert thermal.temperature == pytest.approx(expected)

    def test_converges_to_steady_state(self):
        thermal = model()
        thermal.update(power=10.0, duration=10_000.0)
        assert thermal.temperature == pytest.approx(45.0, abs=1e-6)

    def test_cools_when_power_drops(self):
        thermal = model()
        thermal.update(power=30.0, duration=1_000.0)
        hot = thermal.temperature
        thermal.update(power=0.0, duration=50.0)
        assert thermal.temperature < hot

    def test_update_is_composable(self):
        # two half-steps equal one full step (exact integration)
        a, b = model(), model()
        a.update(10.0, 40.0)
        b.update(10.0, 20.0)
        b.update(10.0, 20.0)
        assert a.temperature == pytest.approx(b.temperature)

    def test_reset(self):
        thermal = model()
        thermal.update(20.0, 500.0)
        thermal.reset()
        assert thermal.temperature == 25.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            model(r_th=0.0)
        with pytest.raises(ConfigurationError):
            model(throttle_start=90.0, throttle_full=80.0)
        with pytest.raises(ConfigurationError):
            model(max_slowdown=0.9)
        with pytest.raises(ConfigurationError):
            model().update(power=-1.0, duration=1.0)


class TestThrottleCurve:
    def test_no_throttle_when_cool(self):
        assert model().throttle_factor() == 1.0

    def test_full_throttle_when_hot(self):
        thermal = model()
        thermal.temperature = 95.0
        assert thermal.throttle_factor() == pytest.approx(1.5)

    def test_linear_ramp(self):
        thermal = model()
        thermal.temperature = 70.0  # halfway between 60 and 80
        assert thermal.throttle_factor() == pytest.approx(1.25)


class TestDeviceIntegration:
    def _device(self, thermal):
        return SimulatedDevice(
            build_tiny_spec(),
            build_tiny_workload(),
            noise=NoiselessMeasurement(),
            thermal=thermal,
            seed=0,
        )

    def test_jobs_heat_the_board(self):
        thermal = model()
        device = self._device(thermal)
        for _ in range(50):
            device.run_job()
        assert thermal.temperature > 25.0

    def test_hot_board_runs_slower_and_costs_more(self):
        cold = self._device(None)
        hot_thermal = model()
        hot_thermal.temperature = 95.0
        hot = self._device(hot_thermal)
        cold_job = cold.run_job()
        hot_job = hot.run_job()
        assert hot_job.latency == pytest.approx(cold_job.latency * 1.5, rel=1e-6)
        assert hot_job.energy == pytest.approx(cold_job.energy * 1.5, rel=1e-6)

    def test_idle_cools_a_hot_board(self):
        thermal = model()
        thermal.temperature = 85.0
        device = self._device(thermal)
        device.idle(300.0)
        assert thermal.temperature < 85.0

    def test_no_thermal_means_no_effect(self):
        device = self._device(None)
        job = device.run_job()
        assert job.latency == pytest.approx(
            device.model.latency(device.current_configuration)
        )
