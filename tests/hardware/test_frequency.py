"""Unit tests for frequency tables and the configuration space."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FrequencyError
from repro.hardware.frequency import ConfigurationSpace, FrequencyTable
from repro.types import DvfsConfiguration


class TestFrequencyTable:
    def test_linspaced_endpoints_and_steps(self):
        table = FrequencyTable.linspaced("cpu", 0.42, 2.26, 25)
        assert len(table) == 25
        assert table.min == pytest.approx(0.42)
        assert table.max == pytest.approx(2.26)

    def test_requires_strictly_ascending(self):
        with pytest.raises(ConfigurationError):
            FrequencyTable("cpu", [1.0, 1.0, 2.0])
        with pytest.raises(ConfigurationError):
            FrequencyTable("cpu", [2.0, 1.0])

    def test_rejects_unknown_unit(self):
        with pytest.raises(ConfigurationError):
            FrequencyTable("npu", [1.0, 2.0])

    def test_rejects_too_few_steps(self):
        with pytest.raises(ConfigurationError):
            FrequencyTable("cpu", [1.0])

    def test_contains_with_float_tolerance(self):
        table = FrequencyTable("gpu", [0.5, 1.0])
        assert 0.5 + 1e-12 in table
        assert 0.75 not in table

    def test_index_of_and_error(self):
        table = FrequencyTable("mem", [0.5, 1.0, 1.5])
        assert table.index_of(1.0) == 1
        with pytest.raises(FrequencyError):
            table.index_of(0.75)

    def test_nearest_snaps_and_breaks_ties_down(self):
        table = FrequencyTable("cpu", [1.0, 2.0])
        assert table.nearest(1.2) == 1.0
        assert table.nearest(1.5) == 1.0  # ties go to the lower frequency
        assert table.nearest(1.51) == 2.0

    def test_nearest_rejects_nan(self):
        with pytest.raises(FrequencyError):
            FrequencyTable("cpu", [1.0, 2.0]).nearest(float("nan"))

    def test_normalize_denormalize_roundtrip(self):
        table = FrequencyTable.linspaced("gpu", 0.2, 1.2, 6)
        for freq in table:
            assert table.denormalize(table.normalize(freq)) == pytest.approx(freq)

    def test_equality_and_hash(self):
        a = FrequencyTable("cpu", [1.0, 2.0])
        b = FrequencyTable("cpu", [1.0, 2.0])
        c = FrequencyTable("cpu", [1.0, 2.5])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestConfigurationSpace:
    @pytest.fixture()
    def space(self):
        return ConfigurationSpace(
            FrequencyTable("cpu", [0.5, 1.0, 2.0]),
            FrequencyTable("gpu", [0.25, 0.75]),
            FrequencyTable("mem", [1.0, 1.5]),
        )

    def test_size_is_product(self, space):
        assert len(space) == 3 * 2 * 2
        assert space.shape == (3, 2, 2)

    def test_requires_canonical_table_order(self):
        with pytest.raises(ConfigurationError):
            ConfigurationSpace(
                FrequencyTable("gpu", [0.25, 0.75]),
                FrequencyTable("cpu", [0.5, 1.0]),
                FrequencyTable("mem", [1.0, 1.5]),
            )

    def test_enumeration_is_unique_and_in_space(self, space):
        configs = space.all_configurations()
        assert len(configs) == len(space)
        assert len(set(configs)) == len(space)
        assert all(c in space for c in configs)

    def test_flat_index_roundtrip(self, space):
        for i, config in enumerate(space.all_configurations()):
            assert space.flat_index_of(config) == i

    def test_at_and_indices_of(self, space):
        config = space.at(2, 1, 0)
        assert config == DvfsConfiguration(2.0, 0.75, 1.0)
        assert space.indices_of(config) == (2, 1, 0)

    def test_max_min_configurations(self, space):
        assert space.max_configuration() == DvfsConfiguration(2.0, 0.75, 1.5)
        assert space.min_configuration() == DvfsConfiguration(0.5, 0.25, 1.0)

    def test_contains_rejects_off_grid(self, space):
        assert DvfsConfiguration(0.6, 0.25, 1.0) not in space

    def test_normalize_bounds(self, space):
        top = space.normalize(space.max_configuration())
        bottom = space.normalize(space.min_configuration())
        assert np.allclose(top, 1.0)
        assert np.allclose(bottom, 0.0)

    def test_normalize_many_shape(self, space):
        arr = space.normalize_many(space.all_configurations()[:5])
        assert arr.shape == (5, 3)
        assert space.normalize_many([]).shape == (0, 3)

    def test_snap_returns_grid_point(self, space):
        snapped = space.snap(0.7, 0.5, 1.2)
        assert snapped in space

    def test_as_array_matches_enumeration(self, space):
        arr = space.as_array()
        assert arr.shape == (len(space), 3)
        assert tuple(arr[0]) == space.all_configurations()[0].as_tuple()
