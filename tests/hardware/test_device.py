"""Unit tests for the SimulatedDevice facade."""

import pytest

from repro.errors import DeviceError


class TestJobExecution:
    def test_run_job_advances_clock_and_energy(self, quiet_device):
        t0, e0 = quiet_device.clock.now, quiet_device.energy_consumed
        result = quiet_device.run_job()
        assert quiet_device.clock.now == pytest.approx(t0 + result.latency)
        assert quiet_device.energy_consumed == pytest.approx(e0 + result.energy)
        assert quiet_device.jobs_executed == 1

    def test_noiseless_job_matches_model(self, quiet_device):
        config = quiet_device.current_configuration
        result = quiet_device.run_job()
        assert result.latency == pytest.approx(quiet_device.model.latency(config), rel=1e-6)
        assert result.energy == pytest.approx(quiet_device.model.energy(config), rel=1e-9)

    def test_jobs_at_slower_config_take_longer(self, quiet_device):
        fast = quiet_device.run_job().latency
        quiet_device.set_configuration(quiet_device.space.min_configuration())
        slow = quiet_device.run_job().latency
        assert slow > fast * 2

    def test_noisy_jobs_vary_but_slightly(self, tiny_device):
        quiet_latency = tiny_device.model.latency(tiny_device.current_configuration)
        draws = [tiny_device.run_job().latency for _ in range(20)]
        assert len(set(draws)) > 1  # process noise present
        for latency in draws:
            assert latency == pytest.approx(quiet_latency, rel=0.05)


class TestMeasurement:
    def test_measure_configuration_runs_until_min_duration(self, quiet_device):
        config = quiet_device.space.min_configuration()
        sample, results = quiet_device.measure_configuration(config, min_duration=1.0)
        assert sample.duration >= 1.0
        assert sample.jobs_measured == len(results)
        assert sample.config == config

    def test_measure_caps_at_max_jobs(self, quiet_device):
        config = quiet_device.space.max_configuration()
        sample, results = quiet_device.measure_configuration(
            config, min_duration=100.0, max_jobs=3
        )
        assert len(results) == 3

    def test_zero_duration_still_runs_one_job(self, quiet_device):
        sample, results = quiet_device.measure_configuration(
            quiet_device.space.max_configuration(), min_duration=0.0
        )
        assert sample.jobs_measured == 1 and len(results) == 1

    def test_cannot_reconfigure_inside_window(self, quiet_device):
        quiet_device.open_measurement()
        with pytest.raises(DeviceError):
            quiet_device.set_configuration(quiet_device.space.min_configuration())
        quiet_device.meter.abort()

    def test_measurement_average_matches_jobs(self, quiet_device):
        quiet_device.open_measurement()
        results = [quiet_device.run_job() for _ in range(4)]
        sample = quiet_device.close_measurement()
        mean_energy = sum(r.energy for r in results) / 4
        assert sample.energy == pytest.approx(mean_energy)

    def test_short_window_noisier_than_long(self, tiny_spec, tiny_workload):
        from repro.hardware import SimulatedDevice as Device
        config_latency = tiny_workload.performance_model(tiny_spec).latency(
            tiny_spec.space.max_configuration()
        )
        def measurement_error(min_duration, seed):
            device = Device(tiny_spec, tiny_workload, seed=seed)
            sample, _ = device.measure_configuration(
                device.space.max_configuration(), min_duration
            )
            return abs(sample.energy / device.model.energy(sample.config) - 1.0)
        short = [measurement_error(0.06, s) for s in range(30)]
        long = [measurement_error(3.0, s) for s in range(30)]
        assert sum(short) / len(short) > sum(long) / len(long)


class TestIdle:
    def test_idle_advances_clock_and_reports_floor_energy(self, quiet_device):
        t0 = quiet_device.clock.now
        energy = quiet_device.idle(2.0)
        assert quiet_device.clock.now == pytest.approx(t0 + 2.0)
        assert energy == pytest.approx(
            quiet_device.model.power.floor_power() * 2.0
        )

    def test_idle_rejects_negative(self, quiet_device):
        with pytest.raises(DeviceError):
            quiet_device.idle(-1.0)
