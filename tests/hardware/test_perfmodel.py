"""Unit tests for the analytic performance model and its calibration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.perfmodel import AnalyticPerformanceModel, CalibrationTarget


class TestCalibrationTarget:
    def test_valid_construction(self):
        target = CalibrationTarget(0.1, 2.0, (0.3, 0.5, 0.2), (0.3, 0.5, 0.2), 0.35)
        assert target.overhead_fraction == pytest.approx(0.02)

    @pytest.mark.parametrize(
        "shares", [(0.5, 0.5, 0.5), (0.3, 0.3), (0.0, 0.5, 0.5), (-0.1, 0.6, 0.5)]
    )
    def test_rejects_bad_shares(self, shares):
        with pytest.raises(ConfigurationError):
            CalibrationTarget(0.1, 2.0, shares, (0.3, 0.5, 0.2), 0.35)

    def test_rejects_nonpositive_anchors(self):
        with pytest.raises(ConfigurationError):
            CalibrationTarget(0.0, 2.0, (0.3, 0.5, 0.2), (0.3, 0.5, 0.2), 0.35)
        with pytest.raises(ConfigurationError):
            CalibrationTarget(0.1, -1.0, (0.3, 0.5, 0.2), (0.3, 0.5, 0.2), 0.35)


class TestCalibrationExactness:
    """The model must hit its anchors at x_max exactly."""

    def test_latency_anchor(self, tiny_spec, tiny_workload):
        model = tiny_workload.performance_model(tiny_spec)
        target = tiny_workload.target_for(tiny_spec)
        x_max = tiny_spec.space.max_configuration()
        assert model.latency(x_max) == pytest.approx(target.latency_at_max, rel=1e-9)

    def test_energy_anchor(self, tiny_spec, tiny_workload):
        model = tiny_workload.performance_model(tiny_spec)
        target = tiny_workload.target_for(tiny_spec)
        x_max = tiny_spec.space.max_configuration()
        assert model.energy(x_max) == pytest.approx(target.energy_at_max, rel=1e-9)

    def test_busy_shares_at_x_max(self, tiny_spec, tiny_workload):
        model = tiny_workload.performance_model(tiny_spec)
        target = tiny_workload.target_for(tiny_spec)
        busy = np.array(model.busy_times(tiny_spec.space.max_configuration()))
        shares = busy / busy.sum()
        assert shares == pytest.approx(np.array(target.busy_shares), rel=1e-6)

    def test_rejects_energy_target_below_floor(self, tiny_spec):
        # floor power * latency exceeds the energy target -> impossible.
        floor = tiny_spec.static_watts + sum(tiny_spec.idle_watts)
        target = CalibrationTarget(
            latency_at_max=1.0,
            energy_at_max=floor * 0.5,
            busy_shares=(0.3, 0.5, 0.2),
            dynamic_split=(0.3, 0.5, 0.2),
            serial_fraction=0.3,
        )
        with pytest.raises(ConfigurationError):
            AnalyticPerformanceModel(tiny_spec, target)


class TestSurfaceStructure:
    @pytest.fixture()
    def model(self, tiny_spec, tiny_workload):
        return tiny_workload.performance_model(tiny_spec)

    def test_x_max_is_fastest(self, model, tiny_spec):
        latencies, _ = model.profile_space()
        x_max_idx = tiny_spec.space.flat_index_of(tiny_spec.space.max_configuration())
        assert latencies[x_max_idx] == pytest.approx(latencies.min())

    def test_latency_monotone_in_each_axis(self, model, tiny_spec):
        # Raising any single clock can never slow a job down.
        space = tiny_spec.space
        for base in space.all_configurations()[:20]:
            for axis, table in enumerate(space.tables):
                idx = space.indices_of(base)[axis]
                if idx + 1 >= len(table):
                    continue
                clocks = list(base.as_tuple())
                clocks[axis] = table.frequencies[idx + 1]
                faster = space.snap(*clocks)
                assert model.latency(faster) <= model.latency(base) + 1e-12

    def test_energy_has_interior_optimum(self, model, tiny_spec):
        # The minimum-energy configuration is neither x_max nor x_min.
        latencies, energies = model.profile_space()
        best = int(np.argmin(energies))
        configs = tiny_spec.space.all_configurations()
        assert configs[best] != tiny_spec.space.max_configuration()
        assert configs[best] != tiny_spec.space.min_configuration()

    def test_vectorized_matches_scalar(self, model, tiny_spec):
        configs = tiny_spec.space.all_configurations()[:10]
        freqs = np.array([c.as_tuple() for c in configs])
        lat_vec = model.latency_array(freqs)
        en_vec = model.energy_array(freqs)
        for i, config in enumerate(configs):
            assert lat_vec[i] == pytest.approx(model.latency(config))
            assert en_vec[i] == pytest.approx(model.energy(config))

    def test_objectives_are_positive_everywhere(self, model):
        latencies, energies = model.profile_space()
        assert np.all(latencies > 0)
        assert np.all(energies > 0)

    def test_objectives_pair(self, model, tiny_spec):
        config = tiny_spec.space.all_configurations()[7]
        assert model.objectives(config) == (
            pytest.approx(model.latency(config)),
            pytest.approx(model.energy(config)),
        )

    def test_busy_times_never_exceed_latency(self, model, tiny_spec):
        for config in tiny_spec.space.all_configurations()[::7]:
            latency = model.latency(config)
            assert all(t <= latency + 1e-12 for t in model.busy_times(config))


class TestObjectiveTensor:
    """The whole-space tensor must agree with scalar evaluation and be shared."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        from repro.hardware.perfmodel import clear_objective_tensor_cache

        clear_objective_tensor_cache()
        yield
        clear_objective_tensor_cache()

    def test_tensor_matches_scalar_objectives(self, tiny_spec, tiny_workload):
        model = tiny_workload.performance_model(tiny_spec)
        tensor = model.objective_tensor()
        for config in tiny_spec.space.all_configurations():
            index = tiny_spec.space.flat_index_of(config)
            assert tensor.latencies[index] == model.latency(config)
            assert tensor.energies[index] == model.energy(config)
            assert tuple(tensor.busy_times[index]) == model.busy_times(config)

    def test_objectives_at_uses_the_tensor(self, tiny_spec, tiny_workload):
        model = tiny_workload.performance_model(tiny_spec)
        config = tiny_spec.space.all_configurations()[3]
        index = tiny_spec.space.flat_index_of(config)
        assert model.objectives_at(index) == model.objectives(config)
        assert model.busy_times_at(index) == model.busy_times(config)

    def test_identically_calibrated_models_share_one_tensor(
        self, tiny_spec, tiny_workload
    ):
        first = tiny_workload.performance_model(tiny_spec)
        second = tiny_workload.performance_model(tiny_spec)
        assert first is not second
        assert first.objective_tensor() is second.objective_tensor()

    def test_tensor_arrays_are_read_only(self, tiny_spec, tiny_workload):
        tensor = tiny_workload.performance_model(tiny_spec).objective_tensor()
        for array in (tensor.latencies, tensor.energies, tensor.busy_times):
            with pytest.raises(ValueError):
                array[0] = 0.0

    def test_cache_clear_forces_rebuild(self, tiny_spec, tiny_workload):
        from repro.hardware.perfmodel import clear_objective_tensor_cache

        model = tiny_workload.performance_model(tiny_spec)
        before = model.objective_tensor()
        clear_objective_tensor_cache()
        after = model.objective_tensor()
        assert before is not after
        np.testing.assert_array_equal(before.latencies, after.latencies)
