"""Unit tests for the device registry and Table 1 fidelity."""

import pytest

from repro.errors import DeviceError
from repro.hardware.devices import available_devices, get_device, jetson_agx, jetson_tx2


class TestTable1Fidelity:
    """The paper's Table 1 numbers must be reproduced exactly."""

    def test_agx_space_size(self):
        assert jetson_agx().num_configurations == 2100

    def test_tx2_space_size(self):
        assert jetson_tx2().num_configurations == 936

    def test_agx_frequency_tables(self):
        spec = jetson_agx()
        cpu, gpu, mem = spec.space.tables
        assert (cpu.min, cpu.max, len(cpu)) == (pytest.approx(0.42), pytest.approx(2.26), 25)
        assert (gpu.min, gpu.max, len(gpu)) == (pytest.approx(0.11), pytest.approx(1.38), 14)
        assert (mem.min, mem.max, len(mem)) == (pytest.approx(0.20), pytest.approx(2.13), 6)

    def test_tx2_frequency_tables(self):
        spec = jetson_tx2()
        cpu, gpu, mem = spec.space.tables
        assert (cpu.min, cpu.max, len(cpu)) == (pytest.approx(0.34), pytest.approx(2.03), 12)
        assert (gpu.min, gpu.max, len(gpu)) == (pytest.approx(0.11), pytest.approx(1.30), 13)
        assert (mem.min, mem.max, len(mem)) == (pytest.approx(0.41), pytest.approx(1.87), 6)

    def test_descriptions_match_paper(self):
        agx, tx2 = jetson_agx(), jetson_tx2()
        assert "ARM v8.2" in agx.cpu_description
        assert "Volta" in agx.gpu_description
        assert "Pascal" in tx2.gpu_description
        assert "Denver2" in tx2.cpu_description

    def test_summary_rows_cover_all_units(self):
        rows = dict(jetson_agx().summary_rows())
        assert rows["Unique configurations"] == "2100"
        assert "25 steps" in rows["CPU frequencies"]


class TestRegistry:
    def test_available_devices(self):
        assert available_devices() == ("agx", "tx2")

    def test_get_device_case_insensitive(self):
        assert get_device("AGX").name == "agx"

    def test_get_device_unknown(self):
        with pytest.raises(DeviceError):
            get_device("orin")

    def test_specs_are_fresh_instances(self):
        assert get_device("agx") is not get_device("agx")


class TestSpecValidation:
    def test_tx2_is_slower_host(self):
        assert jetson_tx2().relative_cpu_speed < jetson_agx().relative_cpu_speed

    def test_waiting_fractions_in_unit_interval(self):
        for spec in (jetson_agx(), jetson_tx2()):
            assert all(0 <= b <= 1 for b in spec.waiting_fractions)

    def test_gpu_gates_worst(self):
        # GPUs clock-gate less effectively than CPUs in the model.
        for spec in (jetson_agx(), jetson_tx2()):
            cpu_wait, gpu_wait, mem_wait = spec.waiting_fractions
            assert gpu_wait > cpu_wait > mem_wait
