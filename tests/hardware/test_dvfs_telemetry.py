"""Unit tests for the DVFS controller and telemetry instruments."""

import pytest

from repro.clock import SimulationClock
from repro.errors import DeviceError, FrequencyError
from repro.hardware.dvfs import KNOB_PATHS, DvfsController
from repro.hardware.noise import MeasurementNoise, NoiselessMeasurement
from repro.hardware.telemetry import EnergyMeter, EventTimer, PowerSensor
from repro.types import DvfsConfiguration


class TestDvfsController:
    @pytest.fixture()
    def controller(self, tiny_spec):
        return DvfsController(tiny_spec, SimulationClock())

    def test_starts_at_x_max(self, controller, tiny_spec):
        assert controller.current == tiny_spec.space.max_configuration()

    def test_apply_counts_switches_and_costs_time(self, controller, tiny_spec):
        target = tiny_spec.space.min_configuration()
        before = controller.clock.now
        assert controller.apply(target) is True
        assert controller.switch_count == 1
        assert controller.clock.now == pytest.approx(
            before + tiny_spec.dvfs_switch_latency
        )

    def test_noop_apply_is_free(self, controller):
        before = controller.clock.now
        assert controller.apply(controller.current) is False
        assert controller.switch_count == 0
        assert controller.clock.now == before

    def test_rejects_off_table_configuration(self, controller):
        with pytest.raises(FrequencyError):
            controller.apply(DvfsConfiguration(0.123, 0.2, 0.5))

    def test_sysfs_knob_roundtrip(self, controller, tiny_spec):
        cpu_freq = tiny_spec.space.cpu.frequencies[0]
        controller.write_knob(KNOB_PATHS[0], str(int(round(cpu_freq * 1e6))))
        assert controller.current.cpu == pytest.approx(cpu_freq)
        knobs = controller.read_knobs()
        assert knobs[KNOB_PATHS[0]] == str(int(round(cpu_freq * 1e6)))

    def test_write_knob_rejects_unknown_path(self, controller):
        with pytest.raises(DeviceError):
            controller.write_knob("/sys/not/a/knob", "1000000")

    def test_write_knob_rejects_garbage_value(self, controller):
        with pytest.raises(DeviceError):
            controller.write_knob(KNOB_PATHS[0], "fast-please")

    def test_write_knob_rejects_unsupported_frequency(self, controller):
        with pytest.raises(FrequencyError):
            controller.write_knob(KNOB_PATHS[0], "123456")

    def test_reset_to_max(self, controller, tiny_spec):
        controller.apply(tiny_spec.space.min_configuration())
        controller.reset_to_max()
        assert controller.current == tiny_spec.space.max_configuration()


class TestEventTimer:
    def test_tracks_truth_closely(self):
        timer = EventTimer(MeasurementNoise(seed=0))
        for latency in (0.01, 0.1, 1.0):
            measured = timer.time(latency)
            assert measured == pytest.approx(latency, rel=5e-3)


class TestPowerSensor:
    def test_quantized_to_resolution(self):
        sensor = PowerSensor(NoiselessMeasurement())
        reading = sensor.read(10.1234)
        steps = round(reading / PowerSensor.RESOLUTION)
        assert reading == pytest.approx(steps * PowerSensor.RESOLUTION)

    def test_rejects_negative_power(self):
        with pytest.raises(DeviceError):
            PowerSensor(NoiselessMeasurement()).read(-1.0)


class TestEnergyMeter:
    @pytest.fixture()
    def meter(self):
        return EnergyMeter(NoiselessMeasurement())

    def test_window_lifecycle(self, meter):
        config = DvfsConfiguration(1.0, 1.0, 1.0)
        meter.open(config)
        meter.record_job(0.1, 2.0)
        meter.record_job(0.3, 4.0)
        sample = meter.close()
        assert sample.config == config
        assert sample.jobs_measured == 2
        assert sample.latency == pytest.approx(0.2)
        assert sample.energy == pytest.approx(3.0)
        assert sample.duration == pytest.approx(0.4)

    def test_cannot_open_twice(self, meter):
        meter.open(DvfsConfiguration(1, 1, 1))
        with pytest.raises(DeviceError):
            meter.open(DvfsConfiguration(1, 1, 1))

    def test_cannot_close_empty_window(self, meter):
        meter.open(DvfsConfiguration(1, 1, 1))
        with pytest.raises(DeviceError):
            meter.close()

    def test_record_requires_open_window(self, meter):
        with pytest.raises(DeviceError):
            meter.record_job(0.1, 1.0)

    def test_abort_discards_window(self, meter):
        meter.open(DvfsConfiguration(1, 1, 1))
        meter.record_job(0.1, 1.0)
        meter.abort()
        assert not meter.is_open
        meter.open(DvfsConfiguration(1, 1, 1))  # reusable after abort
