"""Unit tests for workload profiles and the zoo registry."""

import pytest

from repro.errors import WorkloadError
from repro.hardware.perfmodel import CalibrationTarget
from repro.workloads import (
    WorkloadProfile,
    available_workloads,
    bert_tiny,
    get_workload,
    lstm,
    mobilenet_v2,
    resnet50,
    vit,
)
from repro.workloads.zoo import PAPER_WORKLOADS


class TestRegistry:
    def test_available_contains_paper_workloads(self):
        names = available_workloads()
        for name in PAPER_WORKLOADS:
            assert name in names

    def test_get_workload_case_insensitive(self):
        assert get_workload("ViT").name == "vit"

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_workload("gpt4")

    @pytest.mark.parametrize(
        "factory", [vit, resnet50, lstm, mobilenet_v2, bert_tiny]
    )
    def test_all_profiles_cover_both_devices(self, factory):
        profile = factory()
        assert profile.devices() == ("agx", "tx2")


class TestProfileSemantics:
    def test_task_names_match_paper(self):
        assert vit().task_name == "CIFAR10-ViT"
        assert resnet50().task_name == "ImageNet-ResNet50"
        assert lstm().task_name == "IMDB-LSTM"

    def test_families(self):
        assert vit().family == "transformer"
        assert resnet50().family == "cnn"
        assert lstm().family == "rnn"

    def test_rejects_unknown_family(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="x", family="gan", dataset="D", description="d")

    def test_rejects_empty_name(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="", family="cnn", dataset="D", description="d")

    def test_target_for_unknown_device_raises(self, tiny_spec):
        with pytest.raises(WorkloadError):
            vit().target_for(tiny_spec)

    def test_supports_device(self, agx_spec, tiny_spec):
        assert vit().supports_device(agx_spec)
        assert not vit().supports_device(tiny_spec)

    def test_with_target_adds_device(self, tiny_spec):
        target = CalibrationTarget(0.1, 2.0, (0.3, 0.5, 0.2), (0.3, 0.5, 0.2), 0.3)
        extended = vit().with_target("tiny", target)
        assert extended.supports_device(tiny_spec)
        assert not vit().supports_device(tiny_spec)  # original untouched

    def test_performance_model_builds(self, agx_spec):
        model = vit().performance_model(agx_spec)
        assert model.workload_name == "vit"
        assert model.device is agx_spec
