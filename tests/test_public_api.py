"""The package's public surface: imports, __all__, quick_campaign."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quick_campaign_defaults(self):
        result = repro.quick_campaign(controller="performant", rounds=2)
        assert result.rounds == 2
        assert result.training_energy > 0

    @pytest.mark.parametrize(
        "module",
        [
            "repro.hardware",
            "repro.workloads",
            "repro.bayesopt",
            "repro.ilp",
            "repro.ml",
            "repro.federated",
            "repro.core",
            "repro.baselines",
            "repro.sim",
            "repro.service",
            "repro.analysis",
            "repro.experiments",
        ],
    )
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} has no module docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestDocumentationCoverage:
    """Every public callable on the top-level API must carry a docstring."""

    def test_public_objects_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_core_classes_documented(self):
        from repro.core import (
            BoFLConfig,
            BoFLController,
            DeadlineGuardian,
            ExploitationPlanner,
            ObservationStore,
            StoppingCondition,
        )

        for cls in (
            BoFLConfig,
            BoFLController,
            DeadlineGuardian,
            ExploitationPlanner,
            ObservationStore,
            StoppingCondition,
        ):
            assert cls.__doc__
            public_methods = [
                name
                for name in vars(cls)
                if not name.startswith("_") and callable(getattr(cls, name))
            ]
            for method in public_methods:
                assert getattr(cls, method).__doc__, f"{cls.__name__}.{method}"
