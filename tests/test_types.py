"""Unit tests for the shared value types."""

import pytest

from repro.errors import ConfigurationError
from repro.types import (
    DvfsConfiguration,
    EnergyLedger,
    JobResult,
    ObjectiveVector,
    PerformanceSample,
    RoundBudget,
    Schedule,
    ScheduleEntry,
    require_fraction,
    require_nonnegative_int,
    require_positive,
)


class TestDvfsConfiguration:
    def test_tuple_roundtrip(self):
        config = DvfsConfiguration(1.0, 0.5, 2.0)
        assert config.as_tuple() == (1.0, 0.5, 2.0)
        assert tuple(config) == (1.0, 0.5, 2.0)

    def test_is_hashable_and_equal_by_value(self):
        a = DvfsConfiguration(1.0, 0.5, 2.0)
        b = DvfsConfiguration(1.0, 0.5, 2.0)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_ordering_is_lexicographic(self):
        assert DvfsConfiguration(1.0, 9.0, 9.0) < DvfsConfiguration(2.0, 0.1, 0.1)
        assert DvfsConfiguration(1.0, 0.5, 1.0) < DvfsConfiguration(1.0, 0.6, 0.1)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_invalid_frequencies(self, bad):
        with pytest.raises(ConfigurationError):
            DvfsConfiguration(bad, 1.0, 1.0)


class TestPerformanceSample:
    def _sample(self, latency=0.1, energy=2.0, jobs=4, duration=0.4):
        return PerformanceSample(
            DvfsConfiguration(1.0, 1.0, 1.0), latency, energy, jobs, duration
        )

    def test_objectives_vector(self):
        assert self._sample().objectives == (0.1, 2.0)

    def test_merge_is_job_weighted(self):
        a = self._sample(latency=0.1, energy=2.0, jobs=1)
        b = PerformanceSample(a.config, 0.3, 4.0, jobs_measured=3, duration=0.9)
        merged = a.merged_with(b)
        assert merged.jobs_measured == 4
        assert merged.latency == pytest.approx(0.25)
        assert merged.energy == pytest.approx(3.5)
        assert merged.duration == pytest.approx(1.3)

    def test_merge_rejects_different_configs(self):
        a = self._sample()
        b = PerformanceSample(DvfsConfiguration(2.0, 1.0, 1.0), 0.1, 2.0)
        with pytest.raises(ConfigurationError):
            a.merged_with(b)

    @pytest.mark.parametrize("latency,energy", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_nonpositive_objectives(self, latency, energy):
        with pytest.raises(ConfigurationError):
            PerformanceSample(DvfsConfiguration(1, 1, 1), latency, energy)

    def test_rejects_zero_jobs(self):
        with pytest.raises(ConfigurationError):
            PerformanceSample(DvfsConfiguration(1, 1, 1), 0.1, 1.0, jobs_measured=0)


class TestRoundBudget:
    def test_tracks_jobs_and_time(self):
        budget = RoundBudget(total_jobs=3, deadline=10.0)
        result = JobResult(DvfsConfiguration(1, 1, 1), latency=2.0, energy=1.0)
        budget.record_job(result)
        assert budget.jobs_done == 1
        assert budget.jobs_remaining == 2
        assert budget.elapsed == pytest.approx(2.0)
        assert budget.time_remaining == pytest.approx(8.0)
        assert not budget.finished

    def test_finished_after_all_jobs(self):
        budget = RoundBudget(total_jobs=1, deadline=10.0)
        budget.record_job(JobResult(DvfsConfiguration(1, 1, 1), 1.0, 1.0))
        assert budget.finished
        with pytest.raises(ConfigurationError):
            budget.record_job(JobResult(DvfsConfiguration(1, 1, 1), 1.0, 1.0))

    def test_missed_when_time_runs_out(self):
        budget = RoundBudget(total_jobs=2, deadline=1.0)
        budget.record_job(JobResult(DvfsConfiguration(1, 1, 1), 2.0, 1.0))
        assert budget.missed

    def test_rejects_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            RoundBudget(total_jobs=0, deadline=1.0)
        with pytest.raises(ConfigurationError):
            RoundBudget(total_jobs=1, deadline=0.0)


class TestSchedule:
    def test_total_jobs_and_iteration(self):
        entries = (
            ScheduleEntry(DvfsConfiguration(1, 1, 1), 3),
            ScheduleEntry(DvfsConfiguration(2, 1, 1), 2),
        )
        schedule = Schedule(entries, expected_latency=1.0, expected_energy=5.0)
        assert schedule.total_jobs == 5
        assert len(schedule) == 2
        assert [e.jobs for e in schedule] == [3, 2]

    def test_entry_rejects_negative_jobs(self):
        with pytest.raises(ConfigurationError):
            ScheduleEntry(DvfsConfiguration(1, 1, 1), -1)


class TestObjectiveVector:
    def test_dominates_strictly_better(self):
        assert ObjectiveVector(1.0, 1.0).dominates(ObjectiveVector(2.0, 2.0))
        assert ObjectiveVector(1.0, 2.0).dominates(ObjectiveVector(1.0, 3.0))

    def test_equal_points_do_not_dominate(self):
        a = ObjectiveVector(1.0, 1.0)
        assert not a.dominates(ObjectiveVector(1.0, 1.0))

    def test_incomparable_points(self):
        a = ObjectiveVector(1.0, 3.0)
        b = ObjectiveVector(3.0, 1.0)
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestEnergyLedger:
    def test_categories_accumulate(self):
        ledger = EnergyLedger()
        ledger.add("training", 10.0)
        ledger.add("mbo_overhead", 1.0)
        ledger.add("idle", 0.5)
        ledger.add("radio", 2.0)
        assert ledger.total == pytest.approx(13.5)
        assert ledger.extras["radio"] == pytest.approx(2.0)

    def test_rejects_negative_amounts(self):
        with pytest.raises(ConfigurationError):
            EnergyLedger().add("training", -1.0)


class TestValidators:
    def test_require_positive(self):
        assert require_positive("x", 1.5) == 1.5
        for bad in (0, -1, float("nan")):
            with pytest.raises(ConfigurationError):
                require_positive("x", bad)

    def test_require_fraction(self):
        assert require_fraction("x", 0.0) == 0.0
        assert require_fraction("x", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            require_fraction("x", 1.01)
        with pytest.raises(ConfigurationError):
            require_fraction("x", 0.0, inclusive=False)

    def test_require_nonnegative_int(self):
        assert require_nonnegative_int("n", 0) == 0
        with pytest.raises(ConfigurationError):
            require_nonnegative_int("n", -1)
        with pytest.raises(ConfigurationError):
            require_nonnegative_int("n", 1.5)
        with pytest.raises(ConfigurationError):
            require_nonnegative_int("n", True)
