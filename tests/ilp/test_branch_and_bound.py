"""Unit tests for the MILP branch-and-bound solver."""

import numpy as np
import pytest
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.ilp.branch_and_bound import solve_milp
from repro.ilp.model import IntegerProgram, LinearProgram, SolutionStatus


def knapsack_ip(values, weights, capacity):
    """0/1-ish knapsack as a minimization MILP (bounded x <= 1)."""
    n = len(values)
    lp = LinearProgram(
        c=-np.asarray(values, dtype=float),
        a_ub=np.asarray(weights, dtype=float)[None, :],
        b_ub=[float(capacity)],
        upper_bounds=np.ones(n),
    )
    return IntegerProgram(lp)


class TestKnownInstances:
    def test_small_knapsack(self):
        # values (6, 5, 4), weights (3, 2, 2), capacity 4 -> pick items 2+3 = 9
        sol = solve_milp(knapsack_ip([6, 5, 4], [3, 2, 2], 4))
        assert sol.is_optimal
        assert sol.objective == pytest.approx(-9.0)

    def test_integrality_changes_answer(self):
        # LP relaxation would take 4/3 of item 1; ILP must round.
        ip = knapsack_ip([6], [3], 4)
        sol = solve_milp(ip)
        assert sol.objective == pytest.approx(-6.0)
        assert sol.x[0] == pytest.approx(1.0)

    def test_infeasible_program(self):
        lp = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[0.5], a_eq=[[1.0]], b_eq=[2.0])
        sol = solve_milp(IntegerProgram(lp))
        assert sol.status is SolutionStatus.INFEASIBLE

    def test_unbounded_program(self):
        lp = LinearProgram(c=[-1.0])
        sol = solve_milp(IntegerProgram(lp))
        assert sol.status is SolutionStatus.UNBOUNDED

    def test_mixed_integrality(self):
        # y continuous, x integer: min -x - 0.5 y, x + y <= 2.5, x <= 1.8
        lp = LinearProgram(
            c=[-1.0, -0.5],
            a_ub=[[1.0, 1.0], [1.0, 0.0]],
            b_ub=[2.5, 1.8],
        )
        sol = solve_milp(IntegerProgram(lp, integer=[True, False]))
        assert sol.is_optimal
        assert sol.x[0] == pytest.approx(1.0)
        assert sol.x[1] == pytest.approx(1.5)

    def test_warm_start_incumbent_respected(self):
        ip = knapsack_ip([6, 5, 4], [3, 2, 2], 4)
        warm_x = np.array([0.0, 1.0, 1.0])
        sol = solve_milp(ip, incumbent=(warm_x, -9.0))
        assert sol.objective == pytest.approx(-9.0)

    def test_gap_tol_accepts_near_optimal(self):
        ip = knapsack_ip([6, 5, 4], [3, 2, 2], 4)
        # An incumbent within 20% of optimal and a huge tolerance: the solver
        # may return it unchanged.
        warm_x = np.array([0.0, 1.0, 0.0])
        sol = solve_milp(ip, incumbent=(warm_x, -5.0), gap_tol=0.5)
        assert sol.objective <= -5.0 + 1e-9

    def test_gap_tol_validation(self):
        with pytest.raises(ValueError):
            solve_milp(knapsack_ip([1], [1], 1), gap_tol=-0.1)


class TestAgainstScipy:
    @pytest.mark.parametrize("trial", range(30))
    def test_random_bounded_milps(self, trial):
        rng = np.random.default_rng(100 + trial)
        n = int(rng.integers(2, 7))
        c = rng.normal(size=n)
        a = rng.uniform(0.1, 1.0, size=(2, n))
        b = rng.uniform(n * 0.3, n * 0.8, size=2)
        lp = LinearProgram(c=c, a_ub=a, b_ub=b, upper_bounds=np.full(n, 3.0))
        sol = solve_milp(IntegerProgram(lp))
        ref = milp(
            c=c,
            constraints=[LinearConstraint(a, -np.inf, b)],
            integrality=np.ones(n),
            bounds=Bounds(0, 3),
        )
        assert ref.status == 0 and sol.is_optimal
        assert sol.objective == pytest.approx(ref.fun, abs=1e-6)
        assert np.allclose(sol.x, np.round(sol.x), atol=1e-6)
        assert np.all(a @ sol.x <= b + 1e-7)
