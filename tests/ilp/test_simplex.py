"""Unit tests for the two-phase simplex LP solver."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.errors import ConfigurationError
from repro.ilp.model import LinearProgram, SolutionStatus
from repro.ilp.simplex import solve_lp


class TestKnownInstances:
    def test_trivial_minimum_at_origin(self):
        lp = LinearProgram(c=[1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[4.0])
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(0.0)

    def test_textbook_maximization_as_minimization(self):
        # max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), 36
        lp = LinearProgram(
            c=[-3.0, -5.0],
            a_ub=[[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
            b_ub=[4.0, 12.0, 18.0],
        )
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(-36.0)
        assert sol.x == pytest.approx([2.0, 6.0])

    def test_equality_constraint(self):
        # min x + 2y s.t. x + y = 3 -> (3, 0)
        lp = LinearProgram(c=[1.0, 2.0], a_eq=[[1.0, 1.0]], b_eq=[3.0])
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(3.0)
        assert sol.x == pytest.approx([3.0, 0.0])

    def test_negative_rhs_row_handled(self):
        # -x <= -2  means x >= 2.
        lp = LinearProgram(c=[1.0], a_ub=[[-1.0]], b_ub=[-2.0])
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(2.0)

    def test_infeasible(self):
        lp = LinearProgram(
            c=[1.0], a_ub=[[1.0]], b_ub=[1.0], a_eq=[[1.0]], b_eq=[5.0]
        )
        assert solve_lp(lp).status is SolutionStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram(c=[-1.0], a_ub=[[-1.0]], b_ub=[0.0])
        assert solve_lp(lp).status is SolutionStatus.UNBOUNDED

    def test_upper_bounds_respected(self):
        lp = LinearProgram(c=[-1.0, -1.0], upper_bounds=[2.0, 3.0])
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(-5.0)

    def test_degenerate_problem_terminates(self):
        # Multiple redundant constraints through the optimum.
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_ub=[[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]],
            b_ub=[1.0, 1.0, 1.0, 2.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[2.0],
        )
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(2.0)


class TestAgainstScipy:
    @pytest.mark.parametrize("trial", range(40))
    def test_random_instances(self, trial):
        rng = np.random.default_rng(trial)
        n = int(rng.integers(2, 8))
        m = int(rng.integers(1, 5))
        c = rng.normal(size=n)
        a_ub = rng.normal(size=(m, n))
        b_ub = rng.uniform(1, 5, size=m)
        use_eq = rng.random() < 0.5
        a_eq = rng.uniform(0.5, 2.0, size=(1, n)) if use_eq else None
        b_eq = np.array([rng.uniform(1, 4)]) if use_eq else None
        lp = LinearProgram(
            c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
            upper_bounds=np.full(n, 10.0),
        )
        mine = solve_lp(lp)
        ref = linprog(
            c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
            bounds=[(0, 10)] * n, method="highs",
        )
        if ref.status == 0:
            assert mine.is_optimal
            assert mine.objective == pytest.approx(ref.fun, abs=1e-6)
            # solution must be feasible
            assert np.all(a_ub @ mine.x <= b_ub + 1e-7)
            if use_eq:
                assert a_eq @ mine.x == pytest.approx(b_eq, abs=1e-7)
        elif ref.status == 2:
            assert mine.status is SolutionStatus.INFEASIBLE


class TestModelValidation:
    def test_rejects_empty_objective(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(c=[])

    def test_rejects_mismatched_matrix(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(c=[1.0, 2.0], a_ub=[[1.0]], b_ub=[1.0])

    def test_rejects_mismatched_rhs(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[1.0, 2.0])

    def test_rejects_negative_upper_bounds(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(c=[1.0], upper_bounds=[-1.0])

    def test_with_bound_adds_rows(self):
        lp = LinearProgram(c=[1.0, 1.0])
        child = lp.with_bound(0, upper=2.0, lower=1.0)
        assert child.a_ub.shape == (2, 2)
        sol = solve_lp(child)
        assert sol.is_optimal
        assert sol.x[0] == pytest.approx(1.0)

    def test_with_bound_requires_a_bound(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(c=[1.0]).with_bound(0)
