"""Unit tests for the two-phase simplex LP solver."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.errors import ConfigurationError
from repro.ilp.model import LinearProgram, SolutionStatus
from repro.ilp.simplex import solve_lp


class TestKnownInstances:
    def test_trivial_minimum_at_origin(self):
        lp = LinearProgram(c=[1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[4.0])
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(0.0)

    def test_textbook_maximization_as_minimization(self):
        # max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), 36
        lp = LinearProgram(
            c=[-3.0, -5.0],
            a_ub=[[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
            b_ub=[4.0, 12.0, 18.0],
        )
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(-36.0)
        assert sol.x == pytest.approx([2.0, 6.0])

    def test_equality_constraint(self):
        # min x + 2y s.t. x + y = 3 -> (3, 0)
        lp = LinearProgram(c=[1.0, 2.0], a_eq=[[1.0, 1.0]], b_eq=[3.0])
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(3.0)
        assert sol.x == pytest.approx([3.0, 0.0])

    def test_negative_rhs_row_handled(self):
        # -x <= -2  means x >= 2.
        lp = LinearProgram(c=[1.0], a_ub=[[-1.0]], b_ub=[-2.0])
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(2.0)

    def test_infeasible(self):
        lp = LinearProgram(
            c=[1.0], a_ub=[[1.0]], b_ub=[1.0], a_eq=[[1.0]], b_eq=[5.0]
        )
        assert solve_lp(lp).status is SolutionStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram(c=[-1.0], a_ub=[[-1.0]], b_ub=[0.0])
        assert solve_lp(lp).status is SolutionStatus.UNBOUNDED

    def test_upper_bounds_respected(self):
        lp = LinearProgram(c=[-1.0, -1.0], upper_bounds=[2.0, 3.0])
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(-5.0)

    def test_degenerate_problem_terminates(self):
        # Multiple redundant constraints through the optimum.
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_ub=[[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]],
            b_ub=[1.0, 1.0, 1.0, 2.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[2.0],
        )
        sol = solve_lp(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(2.0)


class TestAgainstScipy:
    @pytest.mark.parametrize("trial", range(40))
    def test_random_instances(self, trial):
        rng = np.random.default_rng(trial)
        n = int(rng.integers(2, 8))
        m = int(rng.integers(1, 5))
        c = rng.normal(size=n)
        a_ub = rng.normal(size=(m, n))
        b_ub = rng.uniform(1, 5, size=m)
        use_eq = rng.random() < 0.5
        a_eq = rng.uniform(0.5, 2.0, size=(1, n)) if use_eq else None
        b_eq = np.array([rng.uniform(1, 4)]) if use_eq else None
        lp = LinearProgram(
            c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
            upper_bounds=np.full(n, 10.0),
        )
        mine = solve_lp(lp)
        ref = linprog(
            c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
            bounds=[(0, 10)] * n, method="highs",
        )
        if ref.status == 0:
            assert mine.is_optimal
            assert mine.objective == pytest.approx(ref.fun, abs=1e-6)
            # solution must be feasible
            assert np.all(a_ub @ mine.x <= b_ub + 1e-7)
            if use_eq:
                assert a_eq @ mine.x == pytest.approx(b_eq, abs=1e-7)
        elif ref.status == 2:
            assert mine.status is SolutionStatus.INFEASIBLE


class TestModelValidation:
    def test_rejects_empty_objective(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(c=[])

    def test_rejects_mismatched_matrix(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(c=[1.0, 2.0], a_ub=[[1.0]], b_ub=[1.0])

    def test_rejects_mismatched_rhs(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[1.0, 2.0])

    def test_rejects_negative_upper_bounds(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(c=[1.0], upper_bounds=[-1.0])

    def test_with_bound_adds_rows(self):
        lp = LinearProgram(c=[1.0, 1.0])
        child = lp.with_bound(0, upper=2.0, lower=1.0)
        assert child.a_ub.shape == (2, 2)
        sol = solve_lp(child)
        assert sol.is_optimal
        assert sol.x[0] == pytest.approx(1.0)

    def test_with_bound_requires_a_bound(self):
        with pytest.raises(ConfigurationError):
            LinearProgram(c=[1.0]).with_bound(0)


class TestWarmStart:
    """Dual-simplex warm starts must reproduce the cold two-phase result."""

    def parent(self):
        return LinearProgram(
            c=[-3.0, -5.0],
            a_ub=[[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
            b_ub=[4.0, 12.0, 18.0],
        )

    def test_optimal_solve_exposes_a_basis(self):
        sol = solve_lp(self.parent())
        assert sol.basis is not None
        assert sol.basis.n_ub_rows == 3
        assert len(sol.basis.columns) == 3
        # only structural and slack columns, never phase-1 artificials
        assert all(var < 2 + 3 for var in sol.basis.columns)

    def test_warm_child_matches_cold_child(self):
        parent = self.parent()
        warm_basis = solve_lp(parent).basis
        child = parent.with_bound(0, upper=1.0)
        cold = solve_lp(child)
        warm = solve_lp(child, warm_start=warm_basis)
        assert warm.is_optimal and cold.is_optimal
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        assert warm.x == pytest.approx(cold.x, abs=1e-9)

    def test_warm_start_counts_hits(self):
        from repro.obs import runtime as obs

        parent = self.parent()
        warm_basis = solve_lp(parent).basis
        child = parent.with_bound(0, upper=1.0)
        with obs.session() as session:
            solve_lp(child, warm_start=warm_basis)
        assert session.metrics.counter("ilp.lp_warm_attempts") == 1
        assert session.metrics.counter("ilp.lp_warm_hits") == 1

    def test_mismatched_basis_falls_back_to_cold(self):
        from repro.ilp.model import SimplexBasis

        child = self.parent().with_bound(0, upper=1.0)
        bogus = SimplexBasis(columns=(0,), n_ub_rows=0)
        sol = solve_lp(child, warm_start=bogus)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(solve_lp(child).objective, abs=1e-9)

    @pytest.mark.parametrize("trial", range(25))
    def test_random_branching_children_match_cold(self, trial):
        rng = np.random.default_rng(1000 + trial)
        n, m = 4, 3
        lp = LinearProgram(
            c=rng.uniform(-1.0, 1.0, size=n),
            a_ub=rng.uniform(0.1, 1.0, size=(m, n)),
            b_ub=rng.uniform(1.0, 4.0, size=m),
            upper_bounds=np.full(n, 3.0),
        )
        parent = solve_lp(lp)
        assert parent.is_optimal
        if parent.basis is None:
            pytest.skip("degenerate parent basis not extractable")
        var = int(rng.integers(0, n))
        value = parent.x[var]
        for child in (
            lp.with_bound(var, upper=np.floor(value)),
            lp.with_bound(var, lower=np.ceil(value)),
        ):
            cold = solve_lp(child)
            warm = solve_lp(child, warm_start=parent.basis)
            assert warm.status is cold.status
            if cold.is_optimal:
                assert warm.objective == pytest.approx(cold.objective, abs=1e-7)
