"""Unit tests for the Eqn. 1 schedule solvers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InfeasibleError
from repro.ilp.schedule import (
    ScheduleProblem,
    solve_schedule,
    solve_schedule_greedy,
    solve_schedule_pairs,
)


def problem(lat, en, jobs, deadline, margin=0.0):
    return ScheduleProblem(np.array(lat), np.array(en), jobs, deadline, margin)


class TestProblemValidation:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            problem([0.1, 0.2], [1.0], 10, 5.0)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ConfigurationError):
            problem([0.1, 0.0], [1.0, 1.0], 10, 5.0)
        with pytest.raises(ConfigurationError):
            problem([0.1], [1.0], 0, 5.0)
        with pytest.raises(ConfigurationError):
            problem([0.1], [1.0], 10, -1.0)

    def test_safety_margin_shrinks_deadline(self):
        p = problem([0.1], [1.0], 10, 10.0, margin=0.1)
        assert p.effective_deadline == pytest.approx(9.0)

    def test_check_feasible(self):
        with pytest.raises(InfeasibleError):
            problem([1.0], [1.0], 10, 5.0).check_feasible()
        problem([0.4], [1.0], 10, 5.0).check_feasible()  # no raise


class TestGreedy:
    def test_picks_cheapest_feasible_uniform_pace(self):
        # budget/job = 0.5: config 1 (0.4s, 2J) feasible, config 2 (0.6s, 1J) not.
        counts = solve_schedule_greedy(problem([0.4, 0.6, 0.2], [2.0, 1.0, 5.0], 10, 5.0))
        assert counts.tolist() == [10, 0, 0]

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleError):
            solve_schedule_greedy(problem([0.6], [1.0], 10, 5.0))


class TestPairsAndExact:
    def test_mixture_beats_single_config(self):
        # Fast expensive (0.2s, 5J) + slow cheap (0.5s, 1J), W=10, D=3.5:
        # all-fast = 50 J; mixing is much better.
        p = problem([0.2, 0.5], [5.0, 1.0], 10, 3.5)
        single = p.totals(solve_schedule_greedy(p))[1]
        mixed = p.totals(solve_schedule_pairs(p))[1]
        assert mixed < single
        lat, _ = p.totals(solve_schedule_pairs(p))
        assert lat <= 3.5 + 1e-9

    def test_pair_solution_exact_count(self):
        # D = 3.5, mixing: n_slow <= (3.5 - 10*0.2)/(0.5-0.2) = 5
        p = problem([0.2, 0.5], [5.0, 1.0], 10, 3.5)
        counts = solve_schedule_pairs(p)
        assert counts.tolist() == [5, 5]

    def test_exact_never_worse_than_pairs(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            k = int(rng.integers(2, 12))
            lat = rng.uniform(0.1, 1.0, size=k)
            en = rng.uniform(1.0, 8.0, size=k)
            jobs = int(rng.integers(5, 120))
            deadline = float(jobs * rng.uniform(lat.min(), lat.max()))
            if lat.min() * jobs > deadline:
                continue
            p = problem(lat, en, jobs, deadline)
            e_pairs = p.totals(solve_schedule_pairs(p))[1]
            e_exact = p.totals(solve_schedule(p))[1]
            assert e_exact <= e_pairs + 1e-9

    def test_exact_solution_is_feasible(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            k = int(rng.integers(2, 20))
            lat = rng.uniform(0.05, 0.5, size=k)
            en = rng.uniform(0.5, 6.0, size=k)
            jobs = int(rng.integers(10, 200))
            deadline = float(jobs * rng.uniform(lat.min() * 1.01, lat.max()))
            p = problem(lat, en, jobs, deadline)
            counts = solve_schedule(p)
            assert counts.sum() == jobs
            assert np.all(counts >= 0)
            assert p.totals(counts)[0] <= p.effective_deadline + 1e-9

    def test_tight_deadline_forces_fastest(self):
        p = problem([0.2, 0.5], [5.0, 1.0], 10, 10 * 0.2 * 1.001)
        counts = solve_schedule(p)
        assert counts.tolist() == [10, 0]

    def test_loose_deadline_picks_cheapest(self):
        p = problem([0.2, 0.5], [5.0, 1.0], 10, 100.0)
        counts = solve_schedule(p)
        assert counts.tolist() == [0, 10]

    def test_duplicate_configs_handled(self):
        p = problem([0.3, 0.3, 0.3], [2.0, 2.0, 2.0], 7, 10.0)
        counts = solve_schedule(p)
        assert counts.sum() == 7

    def test_single_candidate(self):
        p = problem([0.3], [2.0], 5, 2.0)
        assert solve_schedule(p).tolist() == [5]

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleError):
            solve_schedule(problem([0.5], [1.0], 10, 4.0))
