"""Property-based tests for the schedule solver against scipy's MILP."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.ilp.schedule import ScheduleProblem, solve_schedule


@st.composite
def schedule_instances(draw):
    k = draw(st.integers(2, 10))
    lat = np.array([draw(st.floats(0.05, 1.0)) for _ in range(k)])
    en = np.array([draw(st.floats(0.5, 10.0)) for _ in range(k)])
    jobs = draw(st.integers(2, 80))
    slack = draw(st.floats(1.01, 3.0))
    deadline = float(lat.min() * jobs * slack)
    return lat, en, jobs, deadline


@given(instance=schedule_instances())
@settings(max_examples=60, deadline=None)
def test_schedule_matches_scipy_milp_within_gap(instance):
    lat, en, jobs, deadline = instance
    problem = ScheduleProblem(lat, en, jobs, deadline)
    counts = solve_schedule(problem)
    total_lat, total_en = problem.totals(counts)
    assert counts.sum() == jobs
    assert total_lat <= problem.effective_deadline + 1e-9

    k = lat.size
    ref = milp(
        c=en,
        constraints=[
            LinearConstraint(lat[None, :], -np.inf, deadline),
            LinearConstraint(np.ones((1, k)), jobs, jobs),
        ],
        integrality=np.ones(k),
        bounds=Bounds(0, jobs),
    )
    assert ref.status == 0
    # Our default solver certifies a 0.01% optimality gap.
    assert total_en <= ref.fun * (1 + 2e-4) + 1e-9


@given(instance=schedule_instances(), margin=st.floats(0.0, 0.2))
@settings(max_examples=40, deadline=None)
def test_safety_margin_never_increases_allowed_latency(instance, margin):
    lat, en, jobs, deadline = instance
    relaxed = ScheduleProblem(lat, en, jobs, deadline)
    guarded = ScheduleProblem(lat, en, jobs, deadline, safety_margin=margin)
    try:
        counts = solve_schedule(guarded)
    except Exception:
        return  # margin can make the instance infeasible; that is correct
    assert guarded.totals(counts)[0] <= relaxed.effective_deadline + 1e-9


@given(instance=schedule_instances(), scale=st.floats(0.5, 2.0))
@settings(max_examples=40, deadline=None)
def test_energy_scaling_equivariance(instance, scale):
    # Scaling all energies scales the optimal energy but not the schedule's
    # feasibility structure.
    lat, en, jobs, deadline = instance
    base = ScheduleProblem(lat, en, jobs, deadline)
    scaled = ScheduleProblem(lat, en * scale, jobs, deadline)
    e_base = base.totals(solve_schedule(base))[1]
    e_scaled = scaled.totals(solve_schedule(scaled))[1]
    assert abs(e_scaled - scale * e_base) <= 2e-4 * max(e_scaled, scale * e_base)
