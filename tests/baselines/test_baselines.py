"""Behavioural tests for the four baseline controllers."""

import pytest

from repro.baselines import (
    LinearPaceController,
    OracleController,
    PerformantController,
    RandomSearchController,
)
from repro.core import Phase
from repro.federated.deadlines import UniformDeadlines
from repro.hardware import SimulatedDevice
from tests.conftest import build_tiny_spec, build_tiny_workload

JOBS = 60


def device(seed=0):
    return SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=seed)


def deadlines_for(dev, rounds, ratio=2.5, seed=7):
    t_min = dev.model.latency(dev.space.max_configuration()) * JOBS
    return UniformDeadlines(ratio).generate(t_min, rounds, seed)


class TestPerformant:
    def test_always_runs_at_x_max(self):
        dev = device()
        controller = PerformantController(dev)
        record = controller.run_round(JOBS, deadlines_for(dev, 1)[0])
        assert dev.current_configuration == dev.space.max_configuration()
        assert record.exploited_jobs == JOBS
        assert not record.missed

    def test_energy_matches_x_max_cost(self):
        dev = device()
        controller = PerformantController(dev)
        record = controller.run_round(JOBS, deadlines_for(dev, 1)[0])
        expected = dev.model.energy(dev.space.max_configuration()) * JOBS
        assert record.energy == pytest.approx(expected, rel=0.02)

    def test_never_misses_feasible_deadlines(self):
        dev = device()
        controller = PerformantController(dev)
        for deadline in deadlines_for(dev, 10, ratio=1.1):
            assert not controller.run_round(JOBS, deadline).missed


class TestOracle:
    def test_precomputes_true_front(self):
        controller = OracleController(device())
        front = controller.true_front
        assert front.shape[0] >= 3
        # front objective values must be mutually non-dominated
        for i in range(front.shape[0]):
            for j in range(front.shape[0]):
                if i != j:
                    assert not (
                        (front[j] <= front[i]).all() and (front[j] < front[i]).any()
                    )

    def test_beats_performant_under_slack(self):
        dev_a, dev_b = device(), device()
        oracle = OracleController(dev_a)
        performant = PerformantController(dev_b)
        total_oracle = total_performant = 0.0
        for deadline in deadlines_for(dev_a, 8, ratio=3.0):
            total_oracle += oracle.run_round(JOBS, deadline).energy
            total_performant += performant.run_round(JOBS, deadline).energy
        assert total_oracle < 0.9 * total_performant

    def test_no_misses(self):
        dev = device()
        oracle = OracleController(dev)
        for deadline in deadlines_for(dev, 10, ratio=1.2):
            assert not oracle.run_round(JOBS, deadline).missed

    def test_is_lower_envelope_of_bofl(self, fast_config):
        from repro.core import BoFLController

        dev_a, dev_b = device(3), device(3)
        oracle = OracleController(dev_a)
        bofl = BoFLController(dev_b, fast_config)
        oracle_total = bofl_total = 0.0
        for deadline in deadlines_for(dev_a, 20, ratio=2.5):
            oracle_total += oracle.run_round(JOBS, deadline).energy
            bofl_total += bofl.run_round(JOBS, deadline).energy
        assert oracle_total <= bofl_total * 1.02  # BoFL cannot beat the oracle


class TestRandomSearch:
    def test_same_skeleton_different_suggestions(self, fast_config):
        controller = RandomSearchController(device(), fast_config)
        assert controller.config.mbo_enabled is False
        assert controller.config.tau == fast_config.tau

    def test_runs_through_all_phases(self, fast_config):
        dev = device()
        controller = RandomSearchController(dev, fast_config)
        for deadline in deadlines_for(dev, 20):
            controller.run_round(JOBS, deadline)
        assert controller.phase is Phase.EXPLOITATION

    def test_no_misses(self, fast_config):
        dev = device()
        controller = RandomSearchController(dev, fast_config)
        for deadline in deadlines_for(dev, 12, ratio=1.3):
            assert not controller.run_round(JOBS, deadline).missed


class TestLinearPace:
    def test_scaled_configuration_endpoints(self):
        dev = device()
        controller = LinearPaceController(dev)
        assert controller._scaled_configuration(1.0) == dev.space.max_configuration()
        assert controller._scaled_configuration(0.0) == dev.space.min_configuration()

    def test_saves_energy_with_slack(self):
        dev_a, dev_b = device(), device()
        linear = LinearPaceController(dev_a)
        performant = PerformantController(dev_b)
        linear_total = performant_total = 0.0
        for deadline in deadlines_for(dev_a, 8, ratio=3.0):
            linear_total += linear.run_round(JOBS, deadline).energy
            performant_total += performant.run_round(JOBS, deadline).energy
        assert linear_total < performant_total

    def test_sprints_when_model_underestimates(self):
        dev = device()
        controller = LinearPaceController(dev)
        for deadline in deadlines_for(dev, 12, ratio=1.3):
            controller.run_round(JOBS, deadline)
        # the linear model is wrong on this surface, so catch-up sprints
        # must have happened at least once under tight deadlines
        assert controller.sprints >= 1

    def test_validates_headroom(self):
        with pytest.raises(ValueError):
            LinearPaceController(device(), headroom=1.0)
