"""Tests for the ondemand-governor baseline."""

import pytest

from repro.baselines import OndemandGovernorController, PerformantController
from repro.errors import ConfigurationError
from repro.federated.deadlines import UniformDeadlines
from repro.hardware import SimulatedDevice
from tests.conftest import build_tiny_spec, build_tiny_workload

JOBS = 60


def device(seed=0):
    return SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=seed)


def t_min(dev):
    return dev.model.latency(dev.space.max_configuration()) * JOBS


class TestGovernorMechanics:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OndemandGovernorController(device(), up_threshold=0.3, down_threshold=0.5)
        with pytest.raises(ConfigurationError):
            OndemandGovernorController(device(), up_threshold=1.2)

    def test_downclocks_underutilized_units(self):
        dev = device()
        controller = OndemandGovernorController(dev)
        controller.run_round(JOBS, deadline=1000.0)
        # at x_max at least one unit idles below threshold, so the governor
        # must have moved off the all-max configuration
        assert dev.current_configuration != dev.space.max_configuration()

    def test_utilization_telemetry_drives_steps(self):
        dev = device()
        controller = OndemandGovernorController(dev, up_threshold=0.99, down_threshold=0.98)
        # thresholds force every unit to step down each job
        controller.run_round(5, deadline=1000.0)
        indices = controller._indices
        max_indices = dev.space.indices_of(dev.space.max_configuration())
        assert all(i < m for i, m in zip(indices, max_indices))

    def test_indices_stay_in_bounds(self):
        dev = device()
        controller = OndemandGovernorController(dev, up_threshold=0.99, down_threshold=0.98)
        for _ in range(3):
            controller.run_round(JOBS, deadline=1000.0)
        for axis, table in enumerate(dev.space.tables):
            assert 0 <= controller._indices[axis] < len(table)


class TestGovernorVersusDeadlines:
    def test_deadline_blindness_causes_misses_when_tight(self):
        dev = device()
        controller = OndemandGovernorController(dev)
        deadlines = UniformDeadlines(1.15).generate(t_min(dev), 8, seed=1)
        records = [controller.run_round(JOBS, d) for d in deadlines]
        assert any(r.missed for r in records)

    def test_saves_energy_vs_performant_when_loose(self):
        dev_g, dev_p = device(), device()
        governor = OndemandGovernorController(dev_g)
        performant = PerformantController(dev_p)
        total_g = total_p = 0.0
        for deadline in UniformDeadlines(4.0).generate(t_min(dev_g), 8, seed=1):
            total_g += governor.run_round(JOBS, deadline).energy
            total_p += performant.run_round(JOBS, deadline).energy
        assert total_g < total_p

    def test_all_jobs_execute_even_when_missing(self):
        dev = device()
        controller = OndemandGovernorController(dev)
        record = controller.run_round(JOBS, deadline=t_min(dev) * 1.01)
        assert record.jobs == JOBS


class TestGovernorInRunner:
    def test_available_through_run_campaign(self):
        from repro.sim import run_campaign

        result = run_campaign("agx", "vit", "ondemand", 2.0, rounds=2, seed=0)
        assert result.controller == "ondemand"
        assert result.training_energy > 0
