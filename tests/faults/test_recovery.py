"""Recovery policy validation and the per-campaign recovery log."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import RecoveryLog, RecoveryPolicy
from repro.faults.recovery import NO_RECOVERY


class TestRecoveryPolicy:
    def test_defaults_defend_everything(self):
        policy = RecoveryPolicy()
        assert policy.checkpoints_enabled
        assert policy.restore_on_corruption
        assert policy.escalate_on_anomaly
        assert policy.escalation_rounds == 2

    def test_zero_interval_disables_checkpoints(self):
        assert not RecoveryPolicy(checkpoint_interval=0).checkpoints_enabled

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint_interval"):
            RecoveryPolicy(checkpoint_interval=-1)

    def test_escalation_rounds_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="escalation_rounds"):
            RecoveryPolicy(escalation_rounds=0)

    def test_no_recovery_is_defenseless(self):
        assert not NO_RECOVERY.checkpoints_enabled
        assert not NO_RECOVERY.restore_on_corruption
        assert not NO_RECOVERY.escalate_on_anomaly

    def test_dict_roundtrip(self):
        policy = RecoveryPolicy(
            checkpoint_interval=3,
            restore_on_corruption=False,
            escalate_on_anomaly=True,
            escalation_rounds=5,
        )
        assert RecoveryPolicy.from_dict(policy.to_dict()) == policy

    def test_hashable_for_cache_keys(self):
        assert {RecoveryPolicy(): "hit"}[RecoveryPolicy()] == "hit"
        assert RecoveryPolicy() != NO_RECOVERY


class TestRecoveryLog:
    def test_recovery_actions_sum_restores_and_escalations(self):
        log = RecoveryLog(restores=2, escalations=3)
        assert log.recovery_actions == 5

    def test_to_dict_serializes_injections_as_pairs(self):
        log = RecoveryLog(injected=[(2, "straggler")], checkpoints=1)
        payload = log.to_dict()
        assert payload["injected"] == [[2, "straggler"]]
        assert payload["checkpoints"] == 1
        assert payload["dropped_rounds"] == 0
