"""Fault overlays, round semantics, and injector transitions."""

import pytest

from repro.errors import DeviceError
from repro.faults import FaultInjector, FaultSchedule, FaultSpec, RoundFaults
from repro.faults.injectors import MIN_DEADLINE_FRACTION, overlay_for
from repro.hardware import SimulatedDevice
from repro.hardware.thermal import ThermalModel
from repro.obs import runtime as obs
from tests.conftest import build_tiny_spec, build_tiny_workload


def spec_of(kind, start=0, rounds=1, magnitude=1.0):
    return FaultSpec(kind=kind, start_round=start, rounds=rounds, magnitude=magnitude)


class TestOverlayFolding:
    def test_neutral_for_no_hardware_faults(self):
        overlay = overlay_for((spec_of("transport_loss"), spec_of("client_dropout")))
        assert overlay.is_neutral

    def test_straggler_inflates_latency_and_energy(self):
        overlay = overlay_for((spec_of("straggler", magnitude=1.5),))
        assert overlay.latency_factor == pytest.approx(1.5)
        assert overlay.energy_factor == pytest.approx(1.5)

    def test_stragglers_compose_multiplicatively(self):
        overlay = overlay_for(
            (spec_of("straggler", magnitude=1.5), spec_of("straggler", magnitude=2.0))
        )
        assert overlay.latency_factor == pytest.approx(3.0)

    def test_sensor_faults_touch_only_the_sensor(self):
        overlay = overlay_for((spec_of("sensor_spike", magnitude=5.0),))
        assert overlay.sensor_energy_factor == pytest.approx(5.0)
        assert overlay.latency_factor == pytest.approx(1.0)
        assert not overlay.is_neutral

    def test_dvfs_reject_sets_flag(self):
        assert overlay_for((spec_of("dvfs_reject"),)).reject_dvfs


class TestRoundFaults:
    def test_federated_semantics(self):
        faults = RoundFaults(
            round_index=3,
            specs=(spec_of("client_dropout", start=3), spec_of("transport_loss", start=3)),
        )
        assert faults.any_active
        assert faults.drops_round
        assert faults.loses_report
        assert not faults.forces_thermal
        assert faults.kinds() == ("client_dropout", "transport_loss")

    def test_deadline_factor_composes_stalls(self):
        faults = RoundFaults(
            round_index=0,
            specs=(
                spec_of("transport_stall", magnitude=0.3),
                spec_of("transport_stall", magnitude=0.3),
            ),
        )
        assert faults.deadline_factor == pytest.approx(0.49)

    def test_deadline_factor_floored(self):
        faults = RoundFaults(
            round_index=0,
            specs=tuple(spec_of("transport_stall", magnitude=0.9) for _ in range(4)),
        )
        assert faults.deadline_factor == pytest.approx(MIN_DEADLINE_FRACTION)

    def test_clean_round(self):
        faults = RoundFaults(round_index=0, specs=())
        assert not faults.any_active
        assert faults.deadline_factor == pytest.approx(1.0)


class TestFaultInjector:
    def make_device(self, thermal=None):
        return SimulatedDevice(
            build_tiny_spec(), build_tiny_workload(), thermal=thermal, seed=0
        )

    def test_arm_applies_and_clears_overlay(self):
        device = self.make_device()
        schedule = FaultSchedule(
            faults=(spec_of("straggler", start=1, rounds=2, magnitude=1.4),)
        )
        injector = FaultInjector(schedule, device)
        injector.arm(0)
        assert device.fault_overlay is None
        injector.arm(1)
        assert device.fault_overlay is not None
        assert device.fault_overlay.latency_factor == pytest.approx(1.4)
        injector.arm(3)
        assert device.fault_overlay is None
        injector.disarm()
        assert device.fault_overlay is None

    def test_injections_record_window_openings_once(self):
        schedule = FaultSchedule(
            faults=(spec_of("straggler", start=1, rounds=3, magnitude=1.4),)
        )
        injector = FaultInjector(schedule, self.make_device())
        for round_index in range(5):
            injector.arm(round_index)
        assert injector.injections == [(1, "straggler")]

    def test_thermal_trip_forces_temperature_on_first_round_only(self):
        device = self.make_device(thermal=ThermalModel())
        schedule = FaultSchedule(
            faults=(spec_of("thermal_trip", start=1, rounds=2, magnitude=88.0),)
        )
        injector = FaultInjector(schedule, device)
        injector.arm(0)
        injector.arm(1)
        assert device.thermal.temperature == pytest.approx(88.0)
        device.thermal.temperature = 40.0
        injector.arm(2)  # window still open, but no re-forcing
        assert device.thermal.temperature == pytest.approx(40.0)

    def test_thermal_trip_without_thermal_model_raises(self):
        schedule = FaultSchedule(
            faults=(spec_of("thermal_trip", start=0, magnitude=88.0),)
        )
        injector = FaultInjector(schedule, self.make_device())
        with pytest.raises(DeviceError, match="thermal model"):
            injector.arm(0)

    def test_emits_injected_and_cleared_events(self):
        schedule = FaultSchedule(
            faults=(spec_of("sensor_spike", start=1, rounds=1, magnitude=4.0),)
        )
        injector = FaultInjector(schedule, self.make_device())
        with obs.session() as session:
            for round_index in range(3):
                injector.arm(round_index)
        injected = session.log.events("fault.injected")
        cleared = session.log.events("fault.cleared")
        assert len(injected) == 1
        assert injected[0].payload["fault"] == "sensor_spike"
        assert injected[0].payload["round"] == 1
        assert injected[0].payload["until_round"] == 2
        assert len(cleared) == 1
        assert cleared[0].payload["round"] == 2
        assert session.metrics.counters["faults.injected"] == 1
