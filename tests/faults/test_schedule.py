"""Fault schedule derivation, validation and serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FAULT_KINDS, FaultSchedule, FaultSpec


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(kind="gremlins", start_round=0)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError, match="start_round"):
            FaultSpec(kind="straggler", start_round=-1)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one round"):
            FaultSpec(kind="straggler", start_round=0, rounds=0)

    def test_nonpositive_magnitude_rejected(self):
        with pytest.raises(ConfigurationError, match="magnitude"):
            FaultSpec(kind="straggler", start_round=0, magnitude=0.0)

    def test_fractional_kinds_reject_magnitude_of_one_or_more(self):
        for kind in ("sensor_outage", "transport_stall"):
            with pytest.raises(ConfigurationError, match="fraction"):
                FaultSpec(kind=kind, start_round=0, magnitude=1.0)

    def test_window_semantics(self):
        spec = FaultSpec(kind="straggler", start_round=3, rounds=2, magnitude=1.5)
        assert spec.end_round == 5
        assert not spec.active_in(2)
        assert spec.active_in(3)
        assert spec.active_in(4)
        assert not spec.active_in(5)

    def test_corrupting_kinds(self):
        assert FaultSpec(kind="sensor_spike", start_round=0, magnitude=4.0).corrupts_measurements
        assert FaultSpec(kind="dvfs_reject", start_round=0).corrupts_measurements
        assert not FaultSpec(kind="straggler", start_round=0, magnitude=1.2).corrupts_measurements


class TestGenerate:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.generate(7, 20)
        b = FaultSchedule.generate(7, 20)
        assert a == b
        assert hash(a) == hash(b)

    def test_different_seeds_differ(self):
        assert FaultSchedule.generate(1, 20) != FaultSchedule.generate(2, 20)

    def test_settle_rounds_kept_clean(self):
        schedule = FaultSchedule.generate(3, 20, n_faults=8, settle_rounds=4)
        assert all(f.start_round >= 4 for f in schedule.faults)

    def test_kind_pool_cycled(self):
        schedule = FaultSchedule.generate(0, 20, kinds=("straggler",), n_faults=3)
        assert schedule.kinds() == ("straggler",)

    def test_unknown_pool_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSchedule.generate(0, 10, kinds=("straggler", "gremlins"))

    def test_windows_fit_inside_campaign(self):
        schedule = FaultSchedule.generate(5, 12, n_faults=6)
        assert schedule.max_round <= 11

    def test_zero_faults_is_empty(self):
        schedule = FaultSchedule.generate(0, 10, n_faults=0)
        assert schedule.is_empty
        assert len(schedule) == 0
        assert schedule.max_round == -1

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.generate(0, 0)
        with pytest.raises(ConfigurationError):
            FaultSchedule.generate(0, 10, n_faults=-1)
        with pytest.raises(ConfigurationError):
            FaultSchedule.generate(0, 10, min_duration=3, max_duration=2)


class TestScheduleSemantics:
    def test_active_returns_live_windows(self):
        schedule = FaultSchedule(
            faults=(
                FaultSpec(kind="straggler", start_round=2, rounds=2, magnitude=1.5),
                FaultSpec(kind="transport_loss", start_round=3),
            )
        )
        assert len(schedule.active(1)) == 0
        assert [f.kind for f in schedule.active(3)] == ["straggler", "transport_loss"]

    def test_needs_thermal_only_for_thermal_trips(self):
        hot = FaultSchedule(faults=(FaultSpec(kind="thermal_trip", start_round=0, magnitude=85.0),))
        cold = FaultSchedule(faults=(FaultSpec(kind="straggler", start_round=0, magnitude=1.2),))
        assert hot.needs_thermal
        assert not cold.needs_thermal

    def test_seed_participates_in_equality(self):
        faults = (FaultSpec(kind="straggler", start_round=2, magnitude=1.5),)
        assert FaultSchedule(faults=faults, seed=0) != FaultSchedule(faults=faults, seed=1)

    def test_usable_as_dict_key(self):
        schedule = FaultSchedule.generate(4, 10)
        assert {schedule: "cached"}[FaultSchedule.generate(4, 10)] == "cached"

    def test_non_faultspec_members_rejected(self):
        with pytest.raises(ConfigurationError, match="FaultSpec"):
            FaultSchedule(faults=("straggler",))


class TestRoundtrip:
    def test_dict_roundtrip(self):
        schedule = FaultSchedule.generate(11, 15, n_faults=5)
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_from_dict_requires_faults_list(self):
        with pytest.raises(ConfigurationError, match="faults"):
            FaultSchedule.from_dict({"seed": 3})

    def test_spec_from_dict_missing_field(self):
        with pytest.raises(ConfigurationError, match="missing field"):
            FaultSpec.from_dict({"kind": "straggler"})

    def test_generate_covers_every_kind(self):
        schedule = FaultSchedule.generate(0, 40, n_faults=len(FAULT_KINDS))
        assert set(schedule.kinds()) == set(FAULT_KINDS)
