"""Chaos determinism gates: seed-stability, serial==parallel, clean traces."""

import pytest

from repro.analysis.io import campaign_to_dict
from repro.faults import FaultSchedule, FaultSpec
from repro.obs import runtime as obs
from repro.sim.chaos import preset_schedule
from repro.sim.executor import CampaignExecutor, CampaignSpec
from repro.sim.runner import run_campaign

ROUNDS = 5


def storm():
    return FaultSchedule(
        faults=(
            FaultSpec(kind="sensor_spike", start_round=2, magnitude=5.0),
            FaultSpec(kind="client_dropout", start_round=3),
        ),
        seed=5,
    )


class TestSeedStability:
    def test_same_seed_same_chaos_campaign(self):
        first = run_campaign(
            "agx", "vit", "bofl", 2.0,
            rounds=ROUNDS, seed=0, fault_schedule=storm(), use_cache=False,
        )
        second = run_campaign(
            "agx", "vit", "bofl", 2.0,
            rounds=ROUNDS, seed=0, fault_schedule=storm(), use_cache=False,
        )
        assert campaign_to_dict(first) == campaign_to_dict(second)

    def test_schedule_changes_the_outcome(self):
        clean = run_campaign("agx", "vit", "bofl", 2.0, rounds=ROUNDS, seed=0)
        faulted = run_campaign(
            "agx", "vit", "bofl", 2.0,
            rounds=ROUNDS, seed=0, fault_schedule=storm(),
        )
        assert campaign_to_dict(clean) != campaign_to_dict(faulted)


class TestSerialParallelEquivalence:
    def test_parallel_chaos_matches_serial(self):
        spec = CampaignSpec(
            device="agx", task="vit", controller="bofl",
            deadline_ratio=2.0, rounds=ROUNDS, seed=0,
            fault_schedule=preset_schedule("transport", 1, ROUNDS, n_faults=2),
        )
        serial = CampaignExecutor(workers=1).run([spec], use_cache=False)
        parallel = CampaignExecutor(workers=2).run([spec], use_cache=False)
        assert campaign_to_dict(serial.results[0]) == campaign_to_dict(
            parallel.results[0]
        )


class TestDeterministicTraces:
    def test_deterministic_session_strips_wall_clock_payloads(self):
        with obs.session(deterministic=True) as session:
            obs.emit("mbo.fit", t=1.0, seconds=0.123, n_observations=4)
        (event,) = session.log.events("mbo.fit")
        assert "seconds" not in event.payload
        assert event.payload["n_observations"] == 4

    def test_default_session_keeps_wall_clock_payloads(self):
        with obs.session() as session:
            obs.emit("mbo.fit", t=1.0, seconds=0.123)
        (event,) = session.log.events("mbo.fit")
        assert event.payload["seconds"] == pytest.approx(0.123)

    def test_chaos_trace_is_seed_stable(self, tmp_path):
        paths = []
        for attempt in ("a", "b"):
            with obs.session(deterministic=True) as session:
                run_campaign(
                    "agx", "vit", "bofl", 2.0,
                    rounds=ROUNDS, seed=0,
                    fault_schedule=storm(), use_cache=False,
                )
            path = tmp_path / f"trace_{attempt}.jsonl"
            session.log.dump_jsonl(path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
