"""Chaos campaigns through the runner, cache keys, serialization, report."""

import pytest

from repro.analysis.io import campaign_from_dict, campaign_to_dict
from repro.faults import FaultSchedule, FaultSpec, RecoveryPolicy
from repro.faults.recovery import NO_RECOVERY
from repro.sim.chaos import CHAOS_PRESETS, preset_schedule, run_chaos
from repro.sim.runner import campaign_key, run_campaign
from repro.errors import ConfigurationError

ROUNDS = 5


def tiny_schedule():
    return FaultSchedule(
        faults=(
            FaultSpec(kind="straggler", start_round=2, magnitude=1.4),
            FaultSpec(kind="transport_loss", start_round=3),
        ),
        seed=99,
    )


class TestRunnerChaosPath:
    def test_chaos_summary_attached(self):
        result = run_campaign(
            "agx", "vit", "bofl", 2.0,
            rounds=ROUNDS, seed=0, fault_schedule=tiny_schedule(),
        )
        assert result.chaos is not None
        assert result.chaos.injected == ((2, "straggler"), (3, "transport_loss"))
        assert result.chaos.injections == 2
        assert result.chaos.lost_reports == 1
        assert result.rounds == ROUNDS

    def test_fault_free_campaign_has_no_chaos_summary(self):
        result = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        assert result.chaos is None


class TestCacheKeys:
    def test_schedule_and_policy_separate_keys(self):
        base = campaign_key("agx", "vit", "bofl", 2.0, ROUNDS, 0)
        faulted = campaign_key(
            "agx", "vit", "bofl", 2.0, ROUNDS, 0,
            fault_schedule=tiny_schedule(),
        )
        defenseless = campaign_key(
            "agx", "vit", "bofl", 2.0, ROUNDS, 0,
            fault_schedule=tiny_schedule(), recovery_policy=NO_RECOVERY,
        )
        assert len({base, faulted, defenseless}) == 3

    def test_empty_schedule_normalizes_to_fault_free(self):
        explicit = campaign_key(
            "agx", "vit", "bofl", 2.0, ROUNDS, 0,
            fault_schedule=FaultSchedule(), recovery_policy=RecoveryPolicy(),
        )
        assert explicit == campaign_key("agx", "vit", "bofl", 2.0, ROUNDS, 0)

    def test_missing_policy_defaults_to_full_recovery(self):
        implied = campaign_key(
            "agx", "vit", "bofl", 2.0, ROUNDS, 0, fault_schedule=tiny_schedule()
        )
        explicit = campaign_key(
            "agx", "vit", "bofl", 2.0, ROUNDS, 0,
            fault_schedule=tiny_schedule(), recovery_policy=RecoveryPolicy(),
        )
        assert implied == explicit


class TestSerialization:
    def test_chaos_summary_roundtrips_through_dict(self):
        result = run_campaign(
            "agx", "vit", "bofl", 2.0,
            rounds=ROUNDS, seed=0, fault_schedule=tiny_schedule(),
        )
        restored = campaign_from_dict(campaign_to_dict(result))
        assert restored.chaos == result.chaos
        assert restored.total_energy == pytest.approx(result.total_energy)

    def test_fault_free_roundtrip_keeps_chaos_none(self):
        result = run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)
        assert campaign_from_dict(campaign_to_dict(result)).chaos is None


class TestChaosOrchestration:
    def test_preset_schedules_are_seeded(self):
        for preset in CHAOS_PRESETS:
            a = preset_schedule(preset, 3, 12)
            assert a == preset_schedule(preset, 3, 12)
            assert set(a.kinds()) <= set(CHAOS_PRESETS[preset])

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos preset"):
            preset_schedule("entropy", 0, 10)

    def test_run_chaos_compares_against_fault_free_twin(self):
        outcome = run_chaos(
            "agx", "vit", "bofl", 2.0,
            rounds=ROUNDS, seed=0, schedule=tiny_schedule(),
        )
        assert outcome.metrics.rounds == ROUNDS
        assert outcome.metrics.faulted_rounds == 2
        assert outcome.baseline.chaos is None
        assert outcome.faulted.chaos is not None
        report = outcome.render()
        assert "Chaos campaign" in report
        assert "straggler" in report

    def test_no_recovery_flag_selects_defenseless_policy(self):
        outcome = run_chaos(
            "agx", "vit", "bofl", 2.0,
            rounds=ROUNDS, seed=0, schedule=tiny_schedule(), recovery=False,
        )
        assert outcome.policy == NO_RECOVERY
        assert outcome.faulted.chaos.checkpoints == 0
