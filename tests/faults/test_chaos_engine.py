"""The chaos round loop against a real BoFL controller on the tiny board."""

import pytest

from repro.core import BoFLController
from repro.faults import ChaosRoundEngine, FaultSchedule, FaultSpec
from repro.faults.recovery import NO_RECOVERY, RecoveryPolicy
from repro.hardware import SimulatedDevice
from tests.conftest import build_tiny_spec, build_tiny_workload

JOBS = 60


def make_engine(fast_config, faults, policy=None, seed=0):
    device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=seed)
    controller = BoFLController(device, fast_config)
    schedule = FaultSchedule(faults=tuple(faults))
    return ChaosRoundEngine(device, controller, schedule, policy)


def deadline_for(engine, ratio=2.5):
    x_max = engine.device.space.max_configuration()
    return engine.device.model.latency(x_max) * JOBS * ratio


class TestDroppedRounds:
    def test_dropout_synthesizes_record_and_burns_the_deadline(self, fast_config):
        engine = make_engine(
            fast_config, [FaultSpec(kind="client_dropout", start_round=1)]
        )
        deadline = deadline_for(engine)
        engine.run_round(0, JOBS, deadline)
        before = engine.device.clock.now
        rounds_before = engine.controller.rounds_run
        record = engine.run_round(1, JOBS, deadline)
        assert record.phase == "dropped"
        assert record.missed
        assert record.round_index == 1
        assert record.energy > 0
        assert engine.device.clock.now == pytest.approx(before + deadline)
        # The controller never saw the round; the engine renumbers for it.
        assert engine.controller.rounds_run == rounds_before
        assert engine.log.dropped_rounds == 1

    def test_records_stay_contiguous_after_a_drop(self, fast_config):
        engine = make_engine(
            fast_config, [FaultSpec(kind="client_dropout", start_round=1)]
        )
        deadline = deadline_for(engine)
        records = [engine.run_round(i, JOBS, deadline) for i in range(4)]
        assert [r.round_index for r in records] == [0, 1, 2, 3]


class TestTransportFaults:
    def test_lost_report_marks_round_missed(self, fast_config):
        engine = make_engine(
            fast_config,
            [FaultSpec(kind="transport_loss", start_round=1)],
            policy=NO_RECOVERY,
        )
        deadline = deadline_for(engine)
        engine.run_round(0, JOBS, deadline)
        record = engine.run_round(1, JOBS, deadline)
        assert record.missed
        assert engine.log.lost_reports == 1

    def test_stall_tightens_the_training_deadline(self, fast_config):
        engine = make_engine(
            fast_config,
            [FaultSpec(kind="transport_stall", start_round=1, magnitude=0.4)],
            policy=NO_RECOVERY,
        )
        deadline = deadline_for(engine)
        engine.run_round(0, JOBS, deadline)
        record = engine.run_round(1, JOBS, deadline)
        assert record.deadline == pytest.approx(deadline * 0.6)


class TestRestore:
    def test_corrupted_round_discards_poisoned_observations(self, fast_config):
        engine = make_engine(
            fast_config,
            [FaultSpec(kind="sensor_spike", start_round=1, magnitude=6.0)],
        )
        deadline = deadline_for(engine)
        engine.run_round(0, JOBS, deadline)
        explored_before = len(engine.controller.store)
        engine.run_round(1, JOBS, deadline)
        # The spiked round's observations were rolled back wholesale.
        assert len(engine.controller.store) == explored_before
        assert engine.log.restores == 1
        assert engine.log.checkpoints >= 1

    def test_no_recovery_keeps_poisoned_observations(self, fast_config):
        engine = make_engine(
            fast_config,
            [FaultSpec(kind="sensor_spike", start_round=1, magnitude=6.0)],
            policy=NO_RECOVERY,
        )
        deadline = deadline_for(engine)
        engine.run_round(0, JOBS, deadline)
        explored_before = len(engine.controller.store)
        engine.run_round(1, JOBS, deadline)
        assert len(engine.controller.store) > explored_before
        assert engine.log.restores == 0
        assert engine.log.checkpoints == 0


class TestEscalation:
    def test_miss_under_fault_pins_x_max(self, fast_config):
        engine = make_engine(
            fast_config,
            [FaultSpec(kind="transport_loss", start_round=1)],
            policy=RecoveryPolicy(escalation_rounds=2),
        )
        deadline = deadline_for(engine)
        engine.run_round(0, JOBS, deadline)
        engine.run_round(1, JOBS, deadline)
        assert engine.log.escalations == 1
        assert engine.controller.escalation_active
        phase_before = engine.controller.phase
        record = engine.run_round(2, JOBS, deadline)
        assert record.guardian_triggered
        # Safe-harbor mode: no measurements, no phase advance.
        assert record.explored == []
        assert engine.controller.phase is phase_before
        engine.run_round(3, JOBS, deadline)
        assert not engine.controller.escalation_active

    def test_finish_disarms_faults(self, fast_config):
        engine = make_engine(
            fast_config,
            [FaultSpec(kind="straggler", start_round=0, rounds=10, magnitude=1.5)],
        )
        deadline = deadline_for(engine)
        engine.run_round(0, JOBS, deadline)
        assert engine.device.fault_overlay is not None
        engine.finish()
        assert engine.device.fault_overlay is None


class TestBaselineControllers:
    def test_controllers_without_hooks_degrade_to_injection_only(self, fast_config):
        from repro.baselines.performant import PerformantController

        device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=0)
        controller = PerformantController(device)
        schedule = FaultSchedule(
            faults=(FaultSpec(kind="transport_loss", start_round=1),)
        )
        engine = ChaosRoundEngine(device, controller, schedule)
        x_max = device.space.max_configuration()
        deadline = device.model.latency(x_max) * JOBS * 2.5
        engine.run_round(0, JOBS, deadline)
        record = engine.run_round(1, JOBS, deadline)
        assert record.missed
        # No checkpoint/escalation hooks -> injection-only chaos.
        assert engine.log.checkpoints == 0
        assert engine.log.escalations == 0
