"""Failure injection: hostile deadlines, heavy noise, disabled safety nets.

The controller must stay deadline-safe under everything except an
explicitly disabled guardian, and must degrade gracefully (sprint at
x_max) rather than crash when physics makes a round unwinnable.
"""


from repro.core import BoFLConfig, BoFLController
from repro.federated.deadlines import UniformDeadlines
from repro.hardware import SimulatedDevice
from repro.hardware.noise import MeasurementNoise
from tests.conftest import build_tiny_spec, build_tiny_workload

JOBS = 60


def controller_with(config, seed=0, noise=None):
    device = SimulatedDevice(
        build_tiny_spec(), build_tiny_workload(), seed=seed, noise=noise
    )
    return BoFLController(device, config)


def t_min_of(controller):
    return (
        controller.device.model.latency(controller.device.space.max_configuration())
        * JOBS
    )


class TestHostileDeadlines:
    def test_barely_feasible_deadlines_never_missed(self, fast_config):
        controller = controller_with(fast_config)
        deadline = t_min_of(controller) * 1.06
        records = [controller.run_round(JOBS, deadline) for _ in range(8)]
        assert all(not r.missed for r in records)
        # with zero slack there is no room to explore beyond x_max
        assert sum(r.explored_count for r in records) <= 2

    def test_infeasible_deadline_degrades_not_crashes(self, fast_config):
        controller = controller_with(fast_config)
        impossible = t_min_of(controller) * 0.5
        record = controller.run_round(JOBS, impossible)
        assert record.missed  # physics: nothing can meet it
        assert record.jobs == JOBS  # but every job still ran

    def test_alternating_feast_and_famine(self, fast_config):
        controller = controller_with(fast_config)
        t_min = t_min_of(controller)
        for i in range(12):
            deadline = t_min * (3.0 if i % 2 == 0 else 1.1)
            record = controller.run_round(JOBS, deadline)
            assert not record.missed


class TestDisabledGuardian:
    def test_guardian_off_causes_misses_under_tight_deadlines(self):
        config = BoFLConfig(
            tau=0.8,
            initial_sample_fraction=0.10,
            min_explored_fraction=0.2,
            fit_restarts=0,
            guardian_enabled=False,
            seed=0,
        )
        controller = controller_with(config)
        deadline = t_min_of(controller) * 1.12
        records = [controller.run_round(JOBS, deadline) for _ in range(6)]
        assert any(r.missed for r in records)

    def test_guardian_on_prevents_those_misses(self):
        config = BoFLConfig(
            tau=0.8,
            initial_sample_fraction=0.10,
            min_explored_fraction=0.2,
            fit_restarts=0,
            guardian_enabled=True,
            seed=0,
        )
        controller = controller_with(config)
        deadline = t_min_of(controller) * 1.12
        records = [controller.run_round(JOBS, deadline) for _ in range(6)]
        assert all(not r.missed for r in records)


class TestHeavyNoise:
    def test_survives_noisy_sensors(self, fast_config):
        noise = MeasurementNoise(
            seed=9,
            process_latency_std=0.02,
            process_energy_std=0.05,
            sensor_latency_std=0.02,
            sensor_energy_std=0.08,
        )
        controller = controller_with(fast_config, noise=noise)
        deadlines = UniformDeadlines(2.0).generate(t_min_of(controller), 15, seed=3)
        records = [controller.run_round(JOBS, d) for d in deadlines]
        assert all(not r.missed for r in records)
        assert controller.explored_count >= 6

    def test_noise_does_not_break_schedules(self, fast_config):
        noise = MeasurementNoise(seed=5, sensor_energy_std=0.10)
        controller = controller_with(fast_config, noise=noise)
        deadlines = UniformDeadlines(3.0).generate(t_min_of(controller), 20, seed=3)
        for deadline in deadlines:
            record = controller.run_round(JOBS, deadline)
            assert record.jobs == JOBS
            assert not record.missed


class TestVariableRoundShapes:
    def test_varying_job_counts_per_round(self, fast_config):
        controller = controller_with(fast_config)
        t_job = controller.device.model.latency(
            controller.device.space.max_configuration()
        )
        for jobs in (10, 120, 35, 60, 5):
            record = controller.run_round(jobs, jobs * t_job * 2.0)
            assert record.jobs == jobs
            assert not record.missed

    def test_single_job_rounds(self, fast_config):
        controller = controller_with(fast_config)
        t_job = controller.device.model.latency(
            controller.device.space.max_configuration()
        )
        record = controller.run_round(1, t_job * 5)
        assert record.jobs == 1
        assert not record.missed
