"""Golden determinism tests.

The whole simulation is a pure function of its seeds — nothing reads the
wall clock or global RNG state — so exact values from a reference run are
pinned here (loose 1e-6 relative tolerance to allow for BLAS/platform
float-ordering differences).  If one of these moves, either determinism
broke or a behaviour change slipped in unannounced; both deserve a failing
test.
"""

import pytest

from repro.hardware import jetson_agx
from repro.sim import run_campaign
from repro.workloads import lstm

TOL = 1e-6


class TestGoldenValues:
    def test_performant_campaign_energy(self):
        result = run_campaign(
            "agx", "vit", "performant", 2.0, rounds=3, seed=0, use_cache=False
        )
        assert result.training_energy == pytest.approx(2609.299441311744, rel=TOL)
        assert result.records[0].elapsed == pytest.approx(37.19405616431607, rel=TOL)

    def test_oracle_campaign_energy(self):
        result = run_campaign(
            "agx", "resnet50", "oracle", 2.0, rounds=3, seed=0, use_cache=False
        )
        assert result.training_energy == pytest.approx(2459.890920524399, rel=TOL)
        assert result.records[2].energy == pytest.approx(831.8616284074019, rel=TOL)

    def test_performance_surface_point(self):
        model = lstm().performance_model(jetson_agx())
        config = jetson_agx().space.at(10, 7, 3)
        assert model.latency(config) == pytest.approx(0.5266971391511506, rel=1e-12)
        assert model.energy(config) == pytest.approx(4.943272602223859, rel=1e-12)


class TestRunToRunStability:
    def test_fresh_runs_are_bit_identical(self):
        a = run_campaign("agx", "vit", "performant", 2.0, rounds=2, seed=4, use_cache=False)
        b = run_campaign("agx", "vit", "performant", 2.0, rounds=2, seed=4, use_cache=False)
        assert a.energy_series() == b.energy_series()
        assert a.deadline_series() == b.deadline_series()

    def test_bofl_runs_are_bit_identical(self):
        a = run_campaign("agx", "vit", "bofl", 2.0, rounds=5, seed=4, use_cache=False)
        b = run_campaign("agx", "vit", "bofl", 2.0, rounds=5, seed=4, use_cache=False)
        assert a.energy_series() == b.energy_series()
        assert [r.explored for r in a.records] == [r.explored for r in b.records]
