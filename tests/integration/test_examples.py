"""Smoke tests for every runnable example.

Each example is imported as a module, its scale knobs shrunk, and its
``main()`` executed — so the published entry points cannot silently rot.
Output is captured and checked for the example's headline lines.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def _fresh_campaign_cache():
    from repro.sim import clear_campaign_cache

    clear_campaign_cache()
    yield
    clear_campaign_cache()


class TestExamples:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.ROUNDS = 4
        module.main()
        out = capsys.readouterr().out
        assert "energy improvement" in out
        assert "deadline misses         : 0" in out

    def test_custom_device(self, capsys):
        module = load_example("custom_device")
        module.ROUNDS = 6
        module.main()
        out = capsys.readouterr().out
        assert "288 DVFS configurations" in out
        assert "steady-state saving" in out

    def test_pareto_exploration(self, capsys):
        module = load_example("pareto_exploration")
        module.N_INITIAL = 12
        module.BATCHES = 2
        module.BATCH_SIZE = 6
        module.main()
        out = capsys.readouterr().out
        assert "hypervolume ratio" in out
        assert "Searched Pareto front" in out

    def test_deadline_sensitivity(self, capsys):
        module = load_example("deadline_sensitivity")
        module.ROUNDS = 4
        module.RATIOS = (1.5, 3.0)
        module.main()
        out = capsys.readouterr().out
        assert "T_max/T_min" in out

    def test_federated_training(self, capsys):
        module = load_example("federated_training")
        module.ROUNDS = 3
        module.main()
        out = capsys.readouterr().out
        assert "Final global accuracy" in out

    def test_reporting_deadlines(self, capsys):
        module = load_example("reporting_deadlines")
        module.ROUNDS = 4
        module.main()
        out = capsys.readouterr().out
        assert "rounds reported in time" in out

    def test_thermal_adaptation(self, capsys):
        module = load_example("thermal_adaptation")
        module.ROUNDS = 5
        module.main()
        out = capsys.readouterr().out
        assert "static BoFL" in out
        assert "adaptive" in out
