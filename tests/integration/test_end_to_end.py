"""End-to-end integration: a full BoFL campaign on the tiny board must
show the paper's headline behaviour — explore, construct, exploit, save
energy, never miss a deadline — and compose correctly with the FL stack.
"""

import numpy as np
import pytest

from repro.baselines import OracleController, PerformantController
from repro.core import BoFLController, Phase
from repro.federated import (
    FederatedClient,
    FederatedServer,
    FLTaskSpec,
    StaticDeadlines,
)
from repro.federated.deadlines import UniformDeadlines
from repro.hardware import SimulatedDevice
from repro.hardware.noise import MeasurementNoise
from repro.ml import MLPClassifier, make_blobs_classification, partition_iid
from tests.conftest import build_tiny_spec, build_tiny_workload

JOBS = 60
ROUNDS = 25


@pytest.fixture(scope="module")
def campaign(fast_config_module):
    """One shared full campaign (BoFL + both baselines, paired)."""
    # The tiny board's jobs are ~60 ms and tau is 0.4 s, so the noise
    # model's reference window is scaled to match (a 5 s reference would
    # amplify sensor error 3.5x and test the noise model, not the system).
    devices = {
        name: SimulatedDevice(
            build_tiny_spec(),
            build_tiny_workload(),
            seed=4,
            noise=MeasurementNoise(seed=4, reference_duration=0.4),
        )
        for name in ("bofl", "performant", "oracle")
    }
    controllers = {
        "bofl": BoFLController(devices["bofl"], fast_config_module),
        "performant": PerformantController(devices["performant"]),
        "oracle": OracleController(devices["oracle"]),
    }
    t_min = devices["bofl"].model.latency(
        devices["bofl"].space.max_configuration()
    ) * JOBS
    deadlines = UniformDeadlines(2.5).generate(t_min, ROUNDS, seed=11)
    records = {
        name: [controller.run_round(JOBS, d) for d in deadlines]
        for name, controller in controllers.items()
    }
    return controllers, records


@pytest.fixture(scope="module")
def fast_config_module():
    from repro.core.config import BoFLConfig

    return BoFLConfig(
        tau=0.4,
        initial_sample_fraction=0.06,
        min_explored_fraction=0.22,
        max_batch_size=5,
        fit_restarts=1,
        seed=1,
    )


class TestHeadlineBehaviour:
    def test_no_deadline_misses_anywhere(self, campaign):
        _, records = campaign
        for name, recs in records.items():
            assert all(not r.missed for r in recs), name

    def test_bofl_between_oracle_and_performant(self, campaign):
        _, records = campaign
        total = {
            name: sum(r.energy for r in recs) for name, recs in records.items()
        }
        assert total["oracle"] <= total["bofl"] * 1.02
        assert total["bofl"] < total["performant"]

    def test_meaningful_improvement(self, campaign):
        _, records = campaign
        bofl = sum(r.energy for r in records["bofl"])
        performant = sum(r.energy for r in records["performant"])
        improvement = 1 - bofl / performant
        assert 0.05 < improvement < 0.5

    def test_modest_regret(self, campaign):
        _, records = campaign
        bofl = sum(r.energy for r in records["bofl"])
        oracle = sum(r.energy for r in records["oracle"])
        assert bofl / oracle - 1 < 0.25

    def test_reaches_exploitation(self, campaign):
        controllers, records = campaign
        assert controllers["bofl"].phase is Phase.EXPLOITATION
        exploit_rounds = [r for r in records["bofl"] if r.phase == "exploitation"]
        assert len(exploit_rounds) > ROUNDS / 2

    def test_exploitation_energy_tracks_oracle(self, campaign):
        _, records = campaign
        pairs = [
            (b.energy, o.energy)
            for b, o in zip(records["bofl"], records["oracle"])
            if b.phase == "exploitation"
        ]
        bofl_total = sum(b for b, _ in pairs)
        oracle_total = sum(o for _, o in pairs)
        assert bofl_total / oracle_total - 1 < 0.15

    def test_searched_front_approximates_truth(self, campaign):
        from repro.analysis import hypervolume_ratio
        from repro.bayesopt.hypervolume import reference_from_observations

        controllers, _ = campaign
        bofl = controllers["bofl"]
        oracle = controllers["oracle"]
        found_configs, _ = bofl.store.pareto_set()
        model = bofl.device.model
        found_true = np.array([model.objectives(c) for c in found_configs])
        true_front = oracle.true_front
        reference = reference_from_observations(
            np.vstack([found_true, true_front]), margin=0.05
        )
        assert hypervolume_ratio(found_true, true_front, reference) > 0.85


class TestFederationComposition:
    def test_bofl_clients_train_a_real_model(self, fast_config_module):
        data = make_blobs_classification(360, n_features=8, n_classes=3, seed=0)
        rng = np.random.default_rng(0)
        shards = partition_iid(data, 3, rng)
        task = FLTaskSpec(
            workload=build_tiny_workload(),
            batch_size=12,
            epochs=2,
            minibatches={"tiny": 10},
            rounds=6,
        )
        global_model = MLPClassifier(8, [12], 3, seed=0)
        clients = []
        for i, shard in enumerate(shards):
            device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=i)
            controller = BoFLController(device, fast_config_module)
            clients.append(
                FederatedClient(
                    f"client-{i}",
                    controller,
                    task,
                    model=global_model.clone_architecture(seed=i),
                    data=shard,
                    seed=i,
                )
            )
        server = FederatedServer(
            clients,
            global_model=global_model,
            deadline_schedule=StaticDeadlines(3.0),
            eval_data=data,
            seed=0,
        )
        history = server.run(6)
        final_accuracy = history[-1].global_accuracy
        assert final_accuracy is not None and final_accuracy > 0.8
        assert server.total_energy > 0
        assert all(not report.record.missed for h in history for report in h.reports)
