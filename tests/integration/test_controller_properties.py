"""Property-based tests on the controller's safety invariants.

Hypothesis drives randomized (but feasible) deadline sequences and device
seeds; the invariants must hold for every draw:

* no feasible round is ever missed (the Eqn. 2 guarantee);
* every round runs exactly its W jobs;
* phases only move forward (no restarts without the drift extension);
* energy is positive and bounded by the all-at-worst-configuration cost.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BoFLConfig, BoFLController, Phase
from repro.hardware import SimulatedDevice
from tests.conftest import build_tiny_spec, build_tiny_workload

JOBS = 50


def build_controller(seed):
    device = SimulatedDevice(build_tiny_spec(), build_tiny_workload(), seed=seed)
    config = BoFLConfig(
        tau=0.4,
        initial_sample_fraction=0.06,
        min_explored_fraction=0.12,
        max_batch_size=4,
        fit_restarts=0,
        seed=seed,
    )
    return BoFLController(device, config)


@st.composite
def deadline_ratio_sequences(draw):
    n = draw(st.integers(4, 10))
    return [draw(st.floats(1.06, 4.0)) for _ in range(n)]


@given(ratios=deadline_ratio_sequences(), device_seed=st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_feasible_rounds_never_miss(ratios, device_seed):
    controller = build_controller(device_seed)
    t_min = (
        controller.device.model.latency(controller.device.space.max_configuration())
        * JOBS
    )
    for ratio in ratios:
        record = controller.run_round(JOBS, ratio * t_min)
        assert not record.missed
        assert record.jobs == JOBS


@given(ratios=deadline_ratio_sequences(), device_seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_job_conservation_and_energy_bounds(ratios, device_seed):
    controller = build_controller(device_seed)
    device = controller.device
    t_min = device.model.latency(device.space.max_configuration()) * JOBS
    _, energies = device.model.profile_space()
    worst_round = energies.max() * JOBS * 1.1  # + noise headroom
    total_jobs = 0
    for ratio in ratios:
        record = controller.run_round(JOBS, ratio * t_min)
        total_jobs += record.jobs
        assert 0 < record.energy < worst_round
    assert device.jobs_executed == total_jobs


@given(ratios=deadline_ratio_sequences(), device_seed=st.integers(0, 30))
@settings(max_examples=15, deadline=None)
def test_phases_monotone_without_drift_extension(ratios, device_seed):
    controller = build_controller(device_seed)
    t_min = (
        controller.device.model.latency(controller.device.space.max_configuration())
        * JOBS
    )
    order = {Phase.RANDOM_EXPLORATION: 1, Phase.PARETO_CONSTRUCTION: 2, Phase.EXPLOITATION: 3}
    last = 0
    for ratio in ratios:
        controller.run_round(JOBS, ratio * t_min)
        rank = order[controller.phase]
        assert rank >= last
        last = rank
    assert not any(t.is_restart for t in controller.transitions)


@given(device_seed=st.integers(0, 30))
@settings(max_examples=10, deadline=None)
def test_observed_front_is_mutually_nondominated(device_seed):
    controller = build_controller(device_seed)
    t_min = (
        controller.device.model.latency(controller.device.space.max_configuration())
        * JOBS
    )
    for _ in range(8):
        controller.run_round(JOBS, 2.5 * t_min)
    front = controller.pareto_front()
    for i in range(front.shape[0]):
        for j in range(front.shape[0]):
            if i == j:
                continue
            dominated = np.all(front[j] <= front[i]) and np.any(front[j] < front[i])
            assert not dominated
