"""Unit tests for the exact 2-D EHVI and EI acquisition functions."""

import numpy as np
import pytest

from repro.bayesopt.acquisition import (
    expected_hypervolume_improvement,
    expected_improvement,
)
from repro.bayesopt.hypervolume import hypervolume_improvement_2d
from repro.errors import OptimizationError

FRONT = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
REF = np.array([4.0, 4.0])


def ehvi(mean, var, front=FRONT, ref=REF):
    return expected_hypervolume_improvement(
        np.atleast_2d(mean), np.atleast_2d(var), front, ref
    )


class TestDegenerateLimit:
    """With vanishing variance, EHVI must equal the deterministic HVI."""

    @pytest.mark.parametrize(
        "point",
        [
            [0.5, 0.5],
            [1.5, 1.5],
            [2.5, 2.5],  # dominated -> 0
            [0.5, 3.5],
            [10.0, 10.0],  # outside reference box -> 0
        ],
    )
    def test_matches_hvi(self, point):
        value = ehvi(np.array([point]), np.full((1, 2), 1e-14))[0]
        exact = hypervolume_improvement_2d(np.array([point]), FRONT, REF)
        assert value == pytest.approx(exact, abs=1e-6)


class TestQualitativeBehaviour:
    def test_nonnegative_everywhere(self, rng):
        means = rng.uniform(-1, 6, size=(100, 2))
        variances = rng.uniform(0.01, 1.0, size=(100, 2))
        values = ehvi(means, variances)
        assert np.all(values >= 0)

    def test_uncertainty_gives_dominated_points_value(self):
        dominated = np.array([[2.5, 2.5]])
        certain = ehvi(dominated, np.full((1, 2), 1e-12))[0]
        uncertain = ehvi(dominated, np.full((1, 2), 1.0))[0]
        assert certain == pytest.approx(0.0, abs=1e-9)
        assert uncertain > 0.01

    def test_better_mean_scores_higher(self):
        good = ehvi(np.array([[0.5, 0.5]]), np.full((1, 2), 0.01))[0]
        bad = ehvi(np.array([[3.5, 3.5]]), np.full((1, 2), 0.01))[0]
        assert good > bad

    def test_empty_front_equals_rectangle_expectation(self):
        mean = np.array([[1.0, 1.0]])
        var = np.full((1, 2), 1e-14)
        value = expected_hypervolume_improvement(mean, var, np.zeros((0, 2)), REF)[0]
        assert value == pytest.approx((4 - 1) * (4 - 1), rel=1e-6)

    def test_monte_carlo_agreement(self, rng):
        mean = np.array([1.6, 1.4])
        std = np.array([0.4, 0.5])
        analytic = ehvi(mean[None, :], (std**2)[None, :])[0]
        draws = rng.normal(mean, std, size=(40_000, 2))
        mc = np.mean(
            [hypervolume_improvement_2d(d[None, :], FRONT, REF) for d in draws[:8000]]
        )
        assert analytic == pytest.approx(mc, rel=0.06)

    def test_batch_evaluation_matches_loop(self, rng):
        means = rng.uniform(0, 4, size=(10, 2))
        variances = rng.uniform(0.01, 0.5, size=(10, 2))
        batch = ehvi(means, variances)
        singles = [ehvi(means[i], variances[i])[0] for i in range(10)]
        assert batch == pytest.approx(np.array(singles))

    def test_shape_validation(self):
        with pytest.raises(OptimizationError):
            expected_hypervolume_improvement(
                np.zeros((3, 2)), np.zeros((2, 2)), FRONT, REF
            )
        with pytest.raises(OptimizationError):
            expected_hypervolume_improvement(
                np.zeros((3, 3)), np.zeros((3, 3)), FRONT, REF
            )


class TestExpectedImprovement:
    def test_zero_variance_reduces_to_plain_improvement(self):
        values = expected_improvement(np.array([1.0, 3.0]), np.array([1e-18, 1e-18]), best=2.0)
        assert values[0] == pytest.approx(1.0, abs=1e-6)
        assert values[1] == pytest.approx(0.0, abs=1e-6)

    def test_uncertainty_adds_value(self):
        at_best = expected_improvement(np.array([2.0]), np.array([1.0]), best=2.0)[0]
        assert at_best > 0.3  # sigma * phi(0) = 0.3989...
