"""Tests for the MBO kernel fast path (see ``docs/kernel_fastpath.md``).

Covers the rank-1 Cholesky extension against the from-scratch refit, the
cached candidate posterior, the pruned-but-exact EHVI argmax, jitter
escalation, and the saturation short-circuit in ``suggest``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesopt.acquisition import (
    MIN_STD,
    ehvi_argmax,
    expected_hypervolume_improvement,
    expected_improvement,
)
from repro.bayesopt.gp import BatchPosterior, GaussianProcess
from repro.bayesopt.kernels import Matern52
from repro.bayesopt.sampling import sobol_configurations
from repro.errors import OptimizationError
from repro.hardware.devices import jetson_agx
from repro.obs import runtime as obs
from repro.workloads.zoo import vit
from repro.bayesopt.optimizer import MultiObjectiveBayesianOptimizer


def fitted_gp(rng, n=20, d=3, noise_variance=1e-5):
    x = rng.uniform(size=(n, d))
    y = np.sin(3.0 * x[:, 0]) + 0.5 * x[:, 1]
    return GaussianProcess(noise_variance=noise_variance).fit(x, y)


def fitted_optimizer(n_obs=40, **kwargs):
    spec = jetson_agx()
    model = vit().performance_model(spec)
    optimizer = MultiObjectiveBayesianOptimizer(
        spec.space, seed=0, fit_restarts=0, **kwargs
    )
    for config in sobol_configurations(spec.space, n_obs, seed=0):
        latency, energy = model.objectives(config)
        optimizer.add_observation(config, latency, energy)
    optimizer.fit(optimize_hyperparameters=False)
    return optimizer


class TestRank1Conditioning:
    """The O(n^2) Cholesky extension must match the O(n^3) refit."""

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(3, 24))
    @settings(max_examples=60, deadline=None)
    def test_rank1_matches_refit_posterior(self, seed, n):
        rng = np.random.default_rng(seed)
        gp = fitted_gp(rng, n=n)
        x_new = rng.uniform(size=(1, 3))
        y_new = rng.normal(size=1)
        fast = gp.conditioned_on(x_new, y_new, fast=True)
        slow = gp.conditioned_on(x_new, y_new, fast=False)
        x_star = rng.uniform(size=(16, 3))
        mean_fast, var_fast = fast.predict(x_star)
        mean_slow, var_slow = slow.predict(x_star)
        np.testing.assert_allclose(mean_fast, mean_slow, rtol=0, atol=1e-9)
        np.testing.assert_allclose(var_fast, var_slow, rtol=0, atol=1e-9)

    def test_chained_extensions_stay_close(self, rng):
        gp_fast = gp_slow = fitted_gp(rng)
        for _ in range(5):
            x_new = rng.uniform(size=(1, 3))
            y_new = rng.normal(size=1)
            gp_fast = gp_fast.conditioned_on(x_new, y_new, fast=True)
            gp_slow = gp_slow.conditioned_on(x_new, y_new, fast=False)
        x_star = rng.uniform(size=(32, 3))
        mean_fast, var_fast = gp_fast.predict(x_star)
        mean_slow, var_slow = gp_slow.predict(x_star)
        np.testing.assert_allclose(mean_fast, mean_slow, rtol=0, atol=1e-8)
        np.testing.assert_allclose(var_fast, var_slow, rtol=0, atol=1e-8)

    def test_precomputed_cross_column_is_equivalent(self, rng):
        gp = fitted_gp(rng)
        candidates = rng.uniform(size=(12, 3))
        posterior = BatchPosterior(gp, candidates, capacity=1)
        pick = 7
        x_new = candidates[pick : pick + 1]
        y_new = np.array([0.3])
        with_column = gp.conditioned_on(
            x_new, y_new, l21=posterior.cross_column(pick)
        )
        without = gp.conditioned_on(x_new, y_new, fast=True)
        x_star = rng.uniform(size=(16, 3))
        # The cached column comes from a batched triangular solve; BLAS
        # blocking may differ from the single-column solve by a few ulp.
        np.testing.assert_allclose(
            with_column.predict(x_star)[0], without.predict(x_star)[0],
            rtol=0, atol=1e-9,
        )
        np.testing.assert_allclose(
            with_column.predict(x_star)[1], without.predict(x_star)[1],
            rtol=0, atol=1e-9,
        )


class TestBatchPosterior:
    def test_matches_gp_predict(self, rng):
        gp = fitted_gp(rng)
        candidates = rng.uniform(size=(40, 3))
        mean_ref, var_ref = gp.predict(candidates)
        mean, var = BatchPosterior(gp, candidates).predict()
        np.testing.assert_allclose(mean, mean_ref, rtol=0, atol=1e-12)
        np.testing.assert_allclose(var, var_ref, rtol=0, atol=1e-12)

    def test_extended_matches_fresh_posterior(self, rng):
        gp = fitted_gp(rng)
        candidates = rng.uniform(size=(30, 3))
        posterior = BatchPosterior(gp, candidates, capacity=3)
        for pick in (4, 11, 26):
            x_new = candidates[pick : pick + 1]
            y_new = np.array([0.1 * pick])
            gp = gp.conditioned_on(x_new, y_new, l21=posterior.cross_column(pick))
            posterior = posterior.extended(gp)
            mean_ref, var_ref = gp.predict(candidates)
            mean, var = posterior.predict()
            np.testing.assert_allclose(mean, mean_ref, rtol=0, atol=1e-9)
            np.testing.assert_allclose(var, var_ref, rtol=0, atol=1e-9)

    def test_extension_beyond_capacity_falls_back(self, rng):
        gp = fitted_gp(rng)
        candidates = rng.uniform(size=(10, 3))
        posterior = BatchPosterior(gp, candidates, capacity=0)
        gp2 = gp.conditioned_on(candidates[:1], np.array([0.2]), fast=True)
        extended = posterior.extended(gp2)
        mean_ref, var_ref = gp2.predict(candidates)
        mean, var = extended.predict()
        np.testing.assert_allclose(mean, mean_ref, rtol=0, atol=1e-9)
        np.testing.assert_allclose(var, var_ref, rtol=0, atol=1e-9)


class TestEhviArgmax:
    """Pruning must stay bit-exact against the dense scan."""

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=120, deadline=None)
    def test_matches_dense_argmax(self, seed):
        rng = np.random.default_rng(seed)
        n = rng.integers(2, 600)
        n_front = rng.integers(1, 30)
        mean = rng.uniform(0.0, 10.0, size=(n, 2))
        var = rng.uniform(0.0, 4.0, size=(n, 2))
        front = rng.uniform(1.0, 9.0, size=(n_front, 2))
        reference = np.array([12.0, 12.0])
        values = expected_hypervolume_improvement(mean, var, front, reference)
        best, best_value = ehvi_argmax(mean, var, front, reference)
        assert best == int(np.argmax(values))
        assert best_value == float(values[best])

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=120, deadline=None)
    def test_matches_dense_argmax_with_active_mask(self, seed):
        rng = np.random.default_rng(seed)
        n = rng.integers(2, 600)
        mean = rng.uniform(0.0, 10.0, size=(n, 2))
        var = rng.uniform(0.0, 4.0, size=(n, 2))
        front = rng.uniform(1.0, 9.0, size=(rng.integers(1, 30), 2))
        reference = np.array([12.0, 12.0])
        active = rng.uniform(size=n) < 0.7
        if not active.any():
            active[rng.integers(0, n)] = True
        values = expected_hypervolume_improvement(mean, var, front, reference)
        masked = np.where(active, values, -np.inf)
        best, best_value = ehvi_argmax(mean, var, front, reference, active=active)
        assert active[best]
        if best_value > 0.0:
            assert best == int(np.argmax(masked))
            assert best_value == float(values[best])
        else:
            assert float(masked.max()) <= 0.0

    def test_saturated_front_returns_first_active(self):
        # Every candidate mean sits beyond the reference: EHVI is 0 everywhere.
        mean = np.full((50, 2), 20.0)
        var = np.full((50, 2), 1e-18)
        front = np.array([[1.0, 1.0]])
        reference = np.array([10.0, 10.0])
        active = np.zeros(50, dtype=bool)
        active[17:] = True
        best, value = ehvi_argmax(mean, var, front, reference, active=active)
        assert (best, value) == (17, 0.0)

    def test_all_inactive_raises(self):
        mean = np.zeros((4, 2))
        var = np.ones((4, 2))
        with pytest.raises(OptimizationError):
            ehvi_argmax(
                mean,
                var,
                np.array([[1.0, 1.0]]),
                np.array([2.0, 2.0]),
                active=np.zeros(4, dtype=bool),
            )


class TestVarianceFloor:
    """EI and EHVI share one deterministic-limit floor (``MIN_STD``)."""

    def test_zero_variance_non_improving_ei_is_exactly_zero(self):
        value = expected_improvement(
            np.array([5.0]), np.array([0.0]), best=1.0
        )
        assert value[0] == 0.0

    def test_zero_variance_dominated_ehvi_is_exactly_zero(self):
        mean = np.array([[5.0, 5.0]])
        var = np.array([[0.0, 0.0]])
        front = np.array([[1.0, 1.0]])
        values = expected_hypervolume_improvement(
            mean, var, front, np.array([10.0, 10.0])
        )
        assert values[0] == 0.0

    def test_floor_is_shared(self):
        assert MIN_STD == 1e-12


class TestJitterEscalation:
    def test_near_singular_covariance_still_factorizes(self):
        # Two identical inputs with zero noise: singular without jitter.
        x = np.array([[0.5, 0.5], [0.5, 0.5], [0.1, 0.9]])
        y = np.array([1.0, 1.0, 2.0])
        gp = GaussianProcess(
            Matern52(np.full(2, 1.0)), noise_variance=1e-18, jitter=0.0
        )
        gp.fit(x, y)
        mean, _ = gp.predict(x[:1])
        assert np.isfinite(mean).all()

    def test_escalation_emits_event(self):
        x = np.array([[0.5, 0.5], [0.5, 0.5], [0.1, 0.9]])
        y = np.array([1.0, 1.0, 2.0])
        with obs.session() as session:
            GaussianProcess(
                Matern52(np.full(2, 1.0)), noise_variance=1e-18, jitter=0.0
            ).fit(x, y)
        events = [e for e in session.log if e.kind == "mbo.jitter_escalated"]
        assert len(events) == 1
        payload = events[0].payload
        assert payload["where"] == "refactorize"
        assert payload["retries"] >= 1
        assert payload["jitter"] > 0.0
        assert session.metrics.counter("mbo.jitter_escalations") == 1

    def test_exhausted_retries_raise_optimization_error(self, monkeypatch):
        from repro.bayesopt import gp as gp_module

        def always_fails(extra):
            raise np.linalg.LinAlgError("not positive definite")

        with pytest.raises(OptimizationError, match="jitter escalations"):
            gp_module._attempt_with_jitter(
                always_fails, first_bump=1e-8, where="test", size=3
            )

    def test_posterior_samples_with_duplicated_query_points(self, rng):
        # Regression: duplicated rows make the fantasy covariance exactly
        # singular; the sampler must escalate jitter instead of raising.
        gp = fitted_gp(rng)
        x_star = np.vstack([rng.uniform(size=(1, 3))] * 4)
        draws = gp.posterior_samples(x_star, 8, np.random.default_rng(0))
        assert draws.shape == (8, 4)
        assert np.isfinite(draws).all()
        # all four duplicated columns must agree draw-by-draw (same point)
        spread = draws.max(axis=1) - draws.min(axis=1)
        assert spread.max() < 1e-3


class TestSuggestFastPath:
    def test_fast_and_legacy_pick_identically(self):
        fast = fitted_optimizer()
        legacy = fitted_optimizer(fast_path=False, warm_start=False)
        assert fast.suggest(8) == legacy.suggest(8)

    def test_repeated_suggest_reuses_cache(self):
        optimizer = fitted_optimizer()
        first = optimizer.suggest(6)
        assert optimizer._suggest_cache is not None
        cached = optimizer._suggest_cache[3]
        assert optimizer.suggest(6) == first
        assert optimizer._suggest_cache[3] is cached

    def test_cache_invalidated_by_new_observation_and_refit(self):
        optimizer = fitted_optimizer()
        picks = optimizer.suggest(4)
        stale = optimizer._suggest_cache
        spec_model = vit().performance_model(jetson_agx())
        latency, energy = spec_model.objectives(picks[0])
        optimizer.add_observation(picks[0], latency, energy)
        optimizer.fit(optimize_hyperparameters=False)
        next_picks = optimizer.suggest(4)
        assert picks[0] not in next_picks
        assert optimizer._suggest_cache is not stale

    def test_exclude_bypasses_cache_and_is_respected(self):
        optimizer = fitted_optimizer()
        picks = optimizer.suggest(6)
        excluded = optimizer.suggest(6, exclude=picks[:2])
        assert not set(picks[:2]) & set(excluded)

    def test_saturated_surrogate_short_circuits(self, monkeypatch):
        optimizer = fitted_optimizer()
        monkeypatch.setattr(
            "repro.bayesopt.optimizer.ehvi_argmax",
            lambda mean, var, front, reference, active=None: (
                int(np.argmax(active)), 0.0
            ),
        )
        calls = {"n": 0}
        original = GaussianProcess.conditioned_on

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(GaussianProcess, "conditioned_on", counting)
        with obs.session() as session:
            picks = optimizer.suggest(6)
        assert len(picks) == 6  # still fills the batch deterministically
        assert calls["n"] == 0  # but without any fantasy GP updates
        assert session.metrics.counter("mbo.suggest_short_circuits") == 1


class TestWarmStartAccounting:
    def test_fit_count_tracks_refits(self):
        optimizer = fitted_optimizer()
        assert optimizer.fit_count == 1
        optimizer.fit(optimize_hyperparameters=False)
        assert optimizer.fit_count == 2

    def test_warm_refit_is_counted(self):
        warm = fitted_optimizer(warm_start=True)
        cold = fitted_optimizer(warm_start=False)
        with obs.session() as session:
            warm.fit()
            cold.fit()
        assert session.metrics.counter("mbo.warm_fits") == 1
        assert session.metrics.counter("mbo.gp_fits") == 2

    def test_first_fit_is_always_cold(self):
        with obs.session() as session:
            fitted_optimizer(warm_start=True)
        assert session.metrics.counter("mbo.warm_fits") == 0
        assert session.metrics.counter("mbo.gp_fits") == 1

    def test_rank_one_updates_are_accounted(self):
        optimizer = fitted_optimizer()
        optimizer.suggest(5)
        # suggest fantasizes batch_size - 1 interior picks per GP; the
        # final pick needs no update.  The optimizer's own GPs stay at 0.
        assert optimizer._gp_latency is not None
        assert optimizer._gp_latency.rank_one_updates == 0
