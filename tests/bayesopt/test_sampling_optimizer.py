"""Unit tests for space sampling and the MBO facade."""

import numpy as np
import pytest

from repro.bayesopt.optimizer import MultiObjectiveBayesianOptimizer
from repro.bayesopt.sampling import sobol_configurations, uniform_configurations
from repro.errors import NotFittedError, OptimizationError
from repro.types import DvfsConfiguration


class TestSobolSampling:
    def test_requested_count_distinct(self, tiny_spec):
        picks = sobol_configurations(tiny_spec.space, 12, seed=0)
        assert len(picks) == 12
        assert len(set(picks)) == 12
        assert all(p in tiny_spec.space for p in picks)

    def test_deterministic_per_seed(self, tiny_spec):
        a = sobol_configurations(tiny_spec.space, 8, seed=3)
        b = sobol_configurations(tiny_spec.space, 8, seed=3)
        c = sobol_configurations(tiny_spec.space, 8, seed=4)
        assert a == b
        assert a != c

    def test_exclusion_respected(self, tiny_spec):
        banned = tiny_spec.space.max_configuration()
        picks = sobol_configurations(tiny_spec.space, 10, seed=0, exclude=[banned])
        assert banned not in picks

    def test_spreads_across_axes(self, tiny_spec):
        picks = sobol_configurations(tiny_spec.space, 20, seed=1)
        cpus = {p.cpu for p in picks}
        gpus = {p.gpu for p in picks}
        assert len(cpus) >= 3 and len(gpus) >= 3

    def test_rejects_oversampling(self, tiny_spec):
        with pytest.raises(OptimizationError):
            sobol_configurations(tiny_spec.space, len(tiny_spec.space) + 1, seed=0)

    def test_rejects_zero(self, tiny_spec):
        with pytest.raises(OptimizationError):
            sobol_configurations(tiny_spec.space, 0, seed=0)


class TestUniformSampling:
    def test_distinct_and_in_space(self, tiny_spec, rng):
        picks = uniform_configurations(tiny_spec.space, 15, rng)
        assert len(set(picks)) == 15

    def test_exclusion(self, tiny_spec, rng):
        banned = set(tiny_spec.space.all_configurations()[:80])
        picks = uniform_configurations(tiny_spec.space, 5, rng, exclude=banned)
        assert not banned.intersection(picks)

    def test_rejects_overdraw_after_exclusion(self, tiny_spec, rng):
        banned = tiny_spec.space.all_configurations()[:85]
        with pytest.raises(OptimizationError):
            uniform_configurations(tiny_spec.space, 10, rng, exclude=banned)


@pytest.fixture()
def seeded_optimizer(tiny_spec, tiny_workload):
    """Optimizer with 12 noise-free observations on the tiny surface."""
    model = tiny_workload.performance_model(tiny_spec)
    optimizer = MultiObjectiveBayesianOptimizer(tiny_spec.space, seed=0, fit_restarts=0)
    for config in sobol_configurations(tiny_spec.space, 12, seed=0):
        optimizer.add_observation(config, *model.objectives(config))
    return optimizer, model


class TestOptimizer:
    def test_observation_bookkeeping(self, seeded_optimizer):
        optimizer, _ = seeded_optimizer
        assert optimizer.n_observations == 12
        configs, values = optimizer.objectives_matrix()
        assert len(configs) == 12 and values.shape == (12, 2)

    def test_add_observation_validates(self, tiny_spec):
        optimizer = MultiObjectiveBayesianOptimizer(tiny_spec.space)
        with pytest.raises(OptimizationError):
            optimizer.add_observation(DvfsConfiguration(9.9, 9.9, 9.9), 1.0, 1.0)
        with pytest.raises(OptimizationError):
            optimizer.add_observation(tiny_spec.space.max_configuration(), -1.0, 1.0)

    def test_duplicate_observation_overwrites(self, tiny_spec):
        optimizer = MultiObjectiveBayesianOptimizer(tiny_spec.space)
        config = tiny_spec.space.max_configuration()
        optimizer.add_observation(config, 1.0, 1.0)
        optimizer.add_observation(config, 2.0, 2.0)
        assert optimizer.n_observations == 1
        _, values = optimizer.objectives_matrix()
        assert values[0].tolist() == [2.0, 2.0]

    def test_fit_requires_two_observations(self, tiny_spec):
        optimizer = MultiObjectiveBayesianOptimizer(tiny_spec.space)
        optimizer.add_observation(tiny_spec.space.max_configuration(), 1.0, 1.0)
        with pytest.raises(OptimizationError):
            optimizer.fit()

    def test_suggest_requires_fit(self, seeded_optimizer):
        optimizer, _ = seeded_optimizer
        with pytest.raises(NotFittedError):
            optimizer.suggest(3)

    def test_suggest_returns_unobserved_distinct(self, seeded_optimizer):
        optimizer, _ = seeded_optimizer
        optimizer.fit(optimize_hyperparameters=False)
        picks = optimizer.suggest(5)
        assert len(picks) == 5
        assert len(set(picks)) == 5
        observed = set(optimizer.observed_configurations)
        assert not observed.intersection(picks)

    def test_suggest_respects_exclude(self, seeded_optimizer, tiny_spec):
        optimizer, _ = seeded_optimizer
        optimizer.fit(optimize_hyperparameters=False)
        exclude = tiny_spec.space.all_configurations()[:40]
        picks = optimizer.suggest(4, exclude=exclude)
        assert not set(exclude).intersection(picks)

    def test_suggest_exhausts_space_gracefully(self, tiny_spec, tiny_workload):
        model = tiny_workload.performance_model(tiny_spec)
        optimizer = MultiObjectiveBayesianOptimizer(tiny_spec.space, fit_restarts=0)
        all_configs = tiny_spec.space.all_configurations()
        for config in all_configs[:-2]:
            optimizer.add_observation(config, *model.objectives(config))
        optimizer.fit(optimize_hyperparameters=False)
        picks = optimizer.suggest(10)
        assert len(picks) == 2  # only two unobserved points remain

    def test_hypervolume_grows_with_observations(self, seeded_optimizer, tiny_spec):
        optimizer, model = seeded_optimizer
        optimizer.freeze_reference()
        hv_before = optimizer.hypervolume()
        # add the true best-energy configuration
        latencies, energies = model.profile_space()
        best = tiny_spec.space.all_configurations()[int(np.argmin(energies))]
        if best not in optimizer.observed_configurations:
            optimizer.add_observation(best, *model.objectives(best))
        assert optimizer.hypervolume() >= hv_before - 1e-12

    def test_suggestions_improve_front(self, seeded_optimizer, tiny_spec):
        optimizer, model = seeded_optimizer
        optimizer.freeze_reference()
        for _ in range(4):
            optimizer.fit(optimize_hyperparameters=False)
            for pick in optimizer.suggest(4):
                optimizer.add_observation(pick, *model.objectives(pick))
        # near-complete front after ~24 evaluations of a 90-point space
        latencies, energies = model.profile_space()
        from repro.bayesopt.pareto import pareto_front
        from repro.bayesopt.hypervolume import hypervolume_2d
        true_front = pareto_front(np.stack([latencies, energies], axis=1))
        reference = optimizer.reference_point()
        _, found = optimizer.pareto_set()
        ratio = hypervolume_2d(found, reference) / hypervolume_2d(true_front, reference)
        assert ratio > 0.95

    def test_predict_shapes(self, seeded_optimizer, tiny_spec):
        optimizer, _ = seeded_optimizer
        optimizer.fit(optimize_hyperparameters=False)
        mean, var = optimizer.predict(tiny_spec.space.all_configurations()[:7])
        assert mean.shape == (7, 2) and var.shape == (7, 2)
        assert np.all(var >= 0)

    def test_fit_count_increments(self, seeded_optimizer):
        optimizer, _ = seeded_optimizer
        assert optimizer.fit_count == 0
        optimizer.fit(optimize_hyperparameters=False)
        optimizer.fit(optimize_hyperparameters=False)
        assert optimizer.fit_count == 2
