"""Unit tests for Pareto utilities and exact 2-D hypervolume."""

import numpy as np
import pytest

from repro.bayesopt.hypervolume import (
    hypervolume_2d,
    hypervolume_improvement_2d,
    reference_from_observations,
)
from repro.bayesopt.pareto import crowding_distance, dominates, pareto_front, pareto_mask
from repro.errors import OptimizationError


class TestDominance:
    def test_strict_dominance(self):
        assert dominates([1, 1], [2, 2])
        assert dominates([1, 2], [1, 3])

    def test_no_self_dominance(self):
        assert not dominates([1, 1], [1, 1])

    def test_incomparable(self):
        assert not dominates([1, 3], [3, 1])
        assert not dominates([3, 1], [1, 3])


class TestParetoMask:
    def test_simple_front(self):
        points = np.array([[1, 3], [2, 2], [3, 1], [3, 3], [2.5, 2.5]])
        mask = pareto_mask(points)
        assert list(mask) == [True, True, True, False, False]

    def test_duplicates_all_kept(self):
        points = np.array([[1, 1], [1, 1], [2, 2]])
        mask = pareto_mask(points)
        assert list(mask) == [True, True, False]

    def test_same_y1_different_y2(self):
        points = np.array([[1, 2], [1, 1]])
        assert list(pareto_mask(points)) == [False, True]

    def test_same_y2_different_y1(self):
        points = np.array([[2, 1], [1, 1]])
        assert list(pareto_mask(points)) == [False, True]

    def test_single_point(self):
        assert list(pareto_mask(np.array([[1.0, 2.0]]))) == [True]

    def test_empty(self):
        assert pareto_mask(np.zeros((0, 2))).shape == (0,)

    def test_three_objectives_quadratic_path(self):
        points = np.array([[1, 1, 1], [2, 2, 2], [1, 2, 0.5]])
        mask = pareto_mask(points)
        assert list(mask) == [True, False, True]

    def test_rejects_one_objective(self):
        with pytest.raises(OptimizationError):
            pareto_mask(np.array([[1.0], [2.0]]))

    def test_matches_bruteforce(self, rng):
        points = rng.uniform(size=(60, 2))
        mask_fast = pareto_mask(points)
        brute = np.ones(60, dtype=bool)
        for i in range(60):
            for j in range(60):
                if i != j and np.all(points[j] <= points[i]) and np.any(points[j] < points[i]):
                    brute[i] = False
        assert np.array_equal(mask_fast, brute)


class TestParetoFront:
    def test_sorted_by_first_objective(self, rng):
        points = rng.uniform(size=(50, 2))
        front = pareto_front(points)
        assert np.all(np.diff(front[:, 0]) >= 0)
        assert np.all(np.diff(front[:, 1]) <= 0)

    def test_front_of_empty(self):
        assert pareto_front(np.zeros((0, 2))).size == 0


class TestCrowdingDistance:
    def test_boundaries_are_infinite(self):
        front = np.array([[1, 3], [2, 2], [3, 1]])
        distances = crowding_distance(front)
        assert np.isinf(distances[0]) and np.isinf(distances[-1])
        assert np.isfinite(distances[1])

    def test_denser_points_have_smaller_distance(self):
        front = np.array([[0, 10], [1, 9], [1.1, 8.9], [10, 0]])
        distances = crowding_distance(front)
        # index 1 sits between two close neighbours; index 2 borders the
        # huge gap to (10, 0) and is therefore less crowded.
        assert distances[1] < distances[2]


class TestHypervolume2D:
    def test_known_staircase(self):
        front = np.array([[1, 3], [2, 2], [3, 1]])
        assert hypervolume_2d(front, [4, 4]) == pytest.approx(6.0)

    def test_single_point_rectangle(self):
        assert hypervolume_2d(np.array([[1, 1]]), [3, 4]) == pytest.approx(6.0)

    def test_dominated_points_add_nothing(self):
        front = np.array([[1, 1]])
        with_dominated = np.array([[1, 1], [2, 2], [1.5, 3]])
        ref = [4, 4]
        assert hypervolume_2d(front, ref) == pytest.approx(
            hypervolume_2d(with_dominated, ref)
        )

    def test_points_outside_reference_ignored(self):
        front = np.array([[1, 1], [5, 0.5]])
        assert hypervolume_2d(front, [4, 4]) == pytest.approx(9.0)

    def test_empty_front(self):
        assert hypervolume_2d(np.zeros((0, 2)), [1, 1]) == 0.0

    def test_monotone_in_points(self, rng):
        points = rng.uniform(0, 1, size=(20, 2))
        ref = np.array([1.2, 1.2])
        hv_partial = hypervolume_2d(points[:10], ref)
        hv_full = hypervolume_2d(points, ref)
        assert hv_full >= hv_partial - 1e-12

    def test_matches_monte_carlo(self, rng):
        points = rng.uniform(0, 1, size=(8, 2))
        ref = np.array([1.0, 1.0])
        exact = hypervolume_2d(points, ref)
        samples = rng.uniform(0, 1, size=(200_000, 2))
        dominated = np.zeros(len(samples), dtype=bool)
        for p in points:
            dominated |= np.all(samples >= p, axis=1)
        assert exact == pytest.approx(dominated.mean(), abs=0.01)

    def test_rejects_bad_reference(self):
        with pytest.raises(OptimizationError):
            hypervolume_2d(np.array([[1, 1]]), [1, 2, 3])


class TestHypervolumeImprovement:
    def test_dominated_batch_adds_zero(self):
        front = np.array([[1, 1]])
        batch = np.array([[2, 2]])
        assert hypervolume_improvement_2d(batch, front, [4, 4]) == pytest.approx(0.0)

    def test_dominating_point_adds_area(self):
        front = np.array([[2, 2]])
        batch = np.array([[1, 1]])
        # HV goes from 4 to 9
        assert hypervolume_improvement_2d(batch, front, [4, 4]) == pytest.approx(5.0)

    def test_empty_batch(self):
        assert hypervolume_improvement_2d(
            np.zeros((0, 2)), np.array([[1, 1]]), [4, 4]
        ) == 0.0

    def test_empty_front(self):
        assert hypervolume_improvement_2d(
            np.array([[1, 1]]), np.zeros((0, 2)), [4, 4]
        ) == pytest.approx(9.0)


class TestReferencePoint:
    def test_componentwise_worst(self):
        points = np.array([[1, 5], [3, 2]])
        assert reference_from_observations(points).tolist() == [3, 5]

    def test_margin_pushes_out(self):
        points = np.array([[1, 5], [3, 2]])
        ref = reference_from_observations(points, margin=0.1)
        assert ref[0] > 3 and ref[1] > 5

    def test_rejects_empty(self):
        with pytest.raises(OptimizationError):
            reference_from_observations(np.zeros((0, 2)))
