"""Unit tests for Gaussian-process regression."""

import numpy as np
import pytest

from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.kernels import Matern52
from repro.errors import NotFittedError, OptimizationError


def toy_data(rng, n=25, noise=0.05):
    x = rng.uniform(size=(n, 3))
    y = np.sin(4 * x[:, 0]) + x[:, 1] ** 2 + noise * rng.normal(size=n)
    return x, y


class TestFitPredict:
    def test_interpolates_training_data(self, rng):
        x, y = toy_data(rng, noise=0.0)
        gp = GaussianProcess(noise_variance=1e-6)
        gp.fit(x, y)
        mean, _ = gp.predict(x)
        assert mean == pytest.approx(y, abs=0.05)

    def test_variance_lower_at_training_points(self, rng):
        x, y = toy_data(rng)
        gp = GaussianProcess().fit(x, y)
        _, var_train = gp.predict(x)
        _, var_far = gp.predict(np.full((1, 3), 5.0))
        assert var_train.max() < var_far[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GaussianProcess().predict(np.zeros((1, 3)))

    def test_fit_validates_shapes(self, rng):
        gp = GaussianProcess()
        with pytest.raises(OptimizationError):
            gp.fit(np.zeros((3, 3)), np.zeros(4))
        with pytest.raises(OptimizationError):
            gp.fit(np.zeros((0, 3)), np.zeros(0))
        with pytest.raises(OptimizationError):
            gp.fit(np.zeros((3, 2)), np.zeros(3))

    def test_variance_nonnegative(self, rng):
        x, y = toy_data(rng)
        gp = GaussianProcess().fit(x, y)
        _, var = gp.predict(rng.uniform(size=(50, 3)))
        assert np.all(var >= 0)

    def test_constant_targets_handled(self):
        x = np.random.default_rng(0).uniform(size=(10, 3))
        gp = GaussianProcess().fit(x, np.full(10, 3.5))
        mean, _ = gp.predict(x[:3])
        assert mean == pytest.approx(np.full(3, 3.5), abs=1e-6)


class TestHyperparameterFit:
    def test_mll_improves(self, rng):
        x, y = toy_data(rng, n=30)
        gp = GaussianProcess(Matern52(np.full(3, 3.0), variance=0.1))
        gp.fit(x, y)
        before = gp.log_marginal_likelihood()
        after = gp.optimize_hyperparameters(rng, n_restarts=2)
        assert after >= before - 1e-6

    def test_generalization_after_fit(self, rng):
        x, y = toy_data(rng, n=40)
        gp = GaussianProcess().fit(x, y)
        gp.optimize_hyperparameters(rng, n_restarts=1)
        x_test = rng.uniform(size=(100, 3))
        y_test = np.sin(4 * x_test[:, 0]) + x_test[:, 1] ** 2
        mean, var = gp.predict(x_test)
        rmse = np.sqrt(np.mean((mean - y_test) ** 2))
        assert rmse < 0.25
        # calibration: most test residuals within 3 posterior sigmas
        z = np.abs(mean - y_test) / np.sqrt(var + gp.noise_variance)
        assert np.mean(z < 3.0) > 0.9

    def test_optimize_requires_fit(self, rng):
        with pytest.raises(NotFittedError):
            GaussianProcess().optimize_hyperparameters(rng)


class TestConditioning:
    def test_conditioned_on_adds_observation(self, rng):
        x, y = toy_data(rng)
        gp = GaussianProcess().fit(x, y)
        x_new = np.array([[0.5, 0.5, 0.5]])
        y_new = np.array([9.0])  # far from the surface
        updated = gp.conditioned_on(x_new, y_new)
        assert updated.n_observations == gp.n_observations + 1
        mean_before, _ = gp.predict(x_new)
        mean_after, _ = updated.predict(x_new)
        assert abs(mean_after[0] - 9.0) < abs(mean_before[0] - 9.0)

    def test_conditioning_leaves_original_untouched(self, rng):
        x, y = toy_data(rng)
        gp = GaussianProcess().fit(x, y)
        n = gp.n_observations
        gp.conditioned_on(np.array([[0.1, 0.2, 0.3]]), np.array([1.0]))
        assert gp.n_observations == n

    def test_conditioning_shrinks_local_variance(self, rng):
        x, y = toy_data(rng)
        gp = GaussianProcess().fit(x, y)
        probe = np.array([[0.9, 0.9, 0.9]])
        _, var_before = gp.predict(probe)
        updated = gp.conditioned_on(probe, np.array([0.0]))
        _, var_after = updated.predict(probe)
        assert var_after[0] < var_before[0]


class TestPosteriorSamples:
    def test_sample_shape_and_spread(self, rng):
        x, y = toy_data(rng)
        gp = GaussianProcess().fit(x, y)
        x_star = rng.uniform(size=(5, 3))
        draws = gp.posterior_samples(x_star, n_samples=64, rng=rng)
        assert draws.shape == (64, 5)
        mean, var = gp.predict(x_star)
        assert draws.mean(axis=0) == pytest.approx(mean, abs=4 * np.sqrt(var.max() / 64) + 0.1)
