"""Property-based tests (hypothesis) for the Pareto/hypervolume/EHVI core.

These check algebraic invariants on arbitrary inputs rather than chosen
examples — the strongest guard on the optimizer's correctness.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bayesopt.acquisition import expected_hypervolume_improvement
from repro.bayesopt.hypervolume import hypervolume_2d, hypervolume_improvement_2d
from repro.bayesopt.pareto import pareto_front, pareto_mask

finite_points = arrays(
    np.float64,
    st.tuples(st.integers(1, 25), st.just(2)),
    elements=st.floats(0.0, 10.0, allow_nan=False),
)

REF = np.array([11.0, 11.0])


@given(points=finite_points)
@settings(max_examples=120, deadline=None)
def test_front_points_are_mutually_nondominated(points):
    front = pareto_front(points)
    for i in range(front.shape[0]):
        for j in range(front.shape[0]):
            if i == j:
                continue
            dominated = np.all(front[j] <= front[i]) and np.any(front[j] < front[i])
            assert not dominated


@given(points=finite_points)
@settings(max_examples=120, deadline=None)
def test_every_dropped_point_is_dominated_by_some_front_point(points):
    mask = pareto_mask(points)
    front = points[mask]
    for point in points[~mask]:
        assert any(
            np.all(f <= point) and np.any(f < point) for f in front
        )


@given(points=finite_points)
@settings(max_examples=120, deadline=None)
def test_hypervolume_of_front_equals_hypervolume_of_all_points(points):
    # Dominated points contribute nothing.
    hv_all = hypervolume_2d(points, REF)
    hv_front = hypervolume_2d(pareto_front(points), REF)
    assert abs(hv_all - hv_front) < 1e-9


@given(points=finite_points, extra=finite_points)
@settings(max_examples=100, deadline=None)
def test_hypervolume_monotone_under_union(points, extra):
    hv = hypervolume_2d(points, REF)
    hv_union = hypervolume_2d(np.vstack([points, extra]), REF)
    assert hv_union >= hv - 1e-9


@given(points=finite_points)
@settings(max_examples=100, deadline=None)
def test_hypervolume_bounded_by_reference_box(points):
    hv = hypervolume_2d(points, REF)
    assert 0.0 <= hv <= REF[0] * REF[1] + 1e-9


@given(points=finite_points, batch=finite_points)
@settings(max_examples=100, deadline=None)
def test_hvi_is_nonnegative_and_consistent(points, batch):
    hvi = hypervolume_improvement_2d(batch, points, REF)
    assert hvi >= -1e-9
    direct = hypervolume_2d(np.vstack([points, batch]), REF) - hypervolume_2d(
        points, REF
    )
    assert abs(hvi - direct) < 1e-9


@given(
    front=finite_points,
    mean=arrays(
        np.float64, st.just((4, 2)), elements=st.floats(0.0, 12.0, allow_nan=False)
    ),
    std=arrays(
        np.float64, st.just((4, 2)), elements=st.floats(0.01, 2.0, allow_nan=False)
    ),
)
@settings(max_examples=80, deadline=None)
def test_ehvi_nonnegative_and_bounded(front, mean, std):
    values = expected_hypervolume_improvement(mean, std**2, front, REF)
    assert np.all(values >= 0)
    # EHVI can never exceed the whole reference box volume ... which is the
    # improvement of a point dominating everything with certainty.
    assert np.all(values <= REF[0] * REF[1] + 1e-6)


@given(
    front=finite_points,
    mean=arrays(
        np.float64, st.just((1, 2)), elements=st.floats(0.5, 10.0, allow_nan=False)
    ),
)
@settings(max_examples=80, deadline=None)
def test_ehvi_sigma_zero_limit_matches_hvi(front, mean):
    var = np.full((1, 2), 1e-16)
    ehvi = expected_hypervolume_improvement(mean, var, front, REF)[0]
    hvi = hypervolume_improvement_2d(mean, front, REF)
    assert abs(ehvi - hvi) < 1e-5


@given(points=finite_points, scale=st.floats(0.1, 5.0), shift=st.floats(0.0, 3.0))
@settings(max_examples=80, deadline=None)
def test_hypervolume_affine_equivariance(points, scale, shift):
    # HV(a*X + b, a*r + b) == a^2 * HV(X, r) for positive scaling per axis.
    hv = hypervolume_2d(points, REF)
    transformed = points * scale + shift
    hv_t = hypervolume_2d(transformed, REF * scale + shift)
    assert abs(hv_t - scale**2 * hv) < 1e-6 * max(1.0, scale**2)
