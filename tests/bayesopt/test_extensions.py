"""Tests for the extension features: m-objective hypervolume and ParEGO."""

import numpy as np
import pytest

from repro.bayesopt.hypervolume import hypervolume, hypervolume_2d
from repro.bayesopt.parego import ParEGOSuggester, tchebycheff_scalarize
from repro.bayesopt.sampling import sobol_configurations
from repro.errors import NotFittedError, OptimizationError


class TestGeneralHypervolume:
    def test_matches_2d_fast_path(self, rng):
        points = rng.uniform(0, 1, size=(15, 2))
        ref = np.array([1.2, 1.2])
        assert hypervolume(points, ref) == pytest.approx(hypervolume_2d(points, ref))

    def test_single_3d_point_is_box_volume(self):
        value = hypervolume(np.array([[1.0, 2.0, 3.0]]), [4.0, 4.0, 4.0])
        assert value == pytest.approx(3 * 2 * 1)

    def test_disjoint_3d_points_add(self):
        # Two boxes that only overlap in the common dominated corner.
        points = np.array([[0.0, 3.0, 3.0], [3.0, 0.0, 3.0]])
        ref = np.array([4.0, 4.0, 4.0])
        # volumes: 4*1*1 = 4 each; overlap region [3,4]^2 x [3,4] = 1
        assert hypervolume(points, ref) == pytest.approx(4 + 4 - 1)

    def test_dominated_3d_point_adds_nothing(self):
        base = np.array([[1.0, 1.0, 1.0]])
        extra = np.vstack([base, [[2.0, 2.0, 2.0]]])
        ref = np.array([3.0, 3.0, 3.0])
        assert hypervolume(extra, ref) == pytest.approx(hypervolume(base, ref))

    def test_3d_matches_monte_carlo(self, rng):
        points = rng.uniform(0, 1, size=(8, 3))
        ref = np.ones(3)
        exact = hypervolume(points, ref)
        samples = rng.uniform(0, 1, size=(200_000, 3))
        dominated = np.zeros(len(samples), dtype=bool)
        for p in points:
            dominated |= np.all(samples >= p, axis=1)
        assert exact == pytest.approx(dominated.mean(), abs=0.01)

    def test_4d_simple_case(self):
        value = hypervolume(np.array([[0.5] * 4]), np.ones(4))
        assert value == pytest.approx(0.5**4)

    def test_points_outside_reference_ignored(self):
        points = np.array([[0.5, 0.5, 0.5], [2.0, 0.1, 0.1]])
        assert hypervolume(points, np.ones(3)) == pytest.approx(0.125)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(OptimizationError):
            hypervolume(np.array([[1.0, 2.0]]), [3.0, 3.0, 3.0])

    def test_empty_front(self):
        assert hypervolume(np.zeros((0, 3)), np.ones(3)) == 0.0


class TestTchebycheffScalarization:
    def test_weighted_max_plus_augmentation(self):
        y = np.array([[0.2, 0.8]])
        value = tchebycheff_scalarize(y, np.array([0.5, 0.5]), rho=0.1)
        assert value[0] == pytest.approx(0.4 + 0.1 * 0.5)

    def test_monotone_in_each_objective(self, rng):
        weights = np.array([0.3, 0.7])
        base = tchebycheff_scalarize(np.array([[0.4, 0.4]]), weights)
        worse = tchebycheff_scalarize(np.array([[0.5, 0.4]]), weights)
        assert worse[0] > base[0]

    def test_validation(self):
        with pytest.raises(OptimizationError):
            tchebycheff_scalarize(np.array([[1.0, 2.0]]), np.array([1.0]))
        with pytest.raises(OptimizationError):
            tchebycheff_scalarize(np.array([[1.0, 2.0]]), np.array([0.0, 0.0]))
        with pytest.raises(OptimizationError):
            tchebycheff_scalarize(np.array([[1.0, 2.0]]), np.array([1.0, 1.0]), rho=-1)


class TestParEGO:
    @pytest.fixture()
    def seeded(self, tiny_spec, tiny_workload):
        model = tiny_workload.performance_model(tiny_spec)
        suggester = ParEGOSuggester(tiny_spec.space, seed=0)
        for config in sobol_configurations(tiny_spec.space, 12, seed=0):
            suggester.add_observation(config, *model.objectives(config))
        return suggester, model

    def test_requires_fit_before_suggest(self, seeded):
        suggester, _ = seeded
        with pytest.raises(NotFittedError):
            suggester.suggest(3)

    def test_suggests_unobserved_distinct(self, seeded):
        suggester, _ = seeded
        suggester.fit()
        picks = suggester.suggest(5)
        assert len(set(picks)) == 5
        assert not set(suggester._observations).intersection(picks)

    def test_improves_front_over_rounds(self, seeded, tiny_spec):
        from repro.bayesopt.hypervolume import hypervolume_2d, reference_from_observations
        from repro.bayesopt.pareto import pareto_front

        suggester, model = seeded
        _, values0 = suggester.pareto_set()
        reference = None
        for _ in range(4):
            suggester.fit()
            for pick in suggester.suggest(4):
                suggester.add_observation(pick, *model.objectives(pick))
        latencies, energies = model.profile_space()
        true_front = pareto_front(np.stack([latencies, energies], axis=1))
        _, found = suggester.pareto_set()
        reference = reference_from_observations(
            np.vstack([found, true_front]), margin=0.05
        )
        ratio = hypervolume_2d(found, reference) / hypervolume_2d(true_front, reference)
        assert ratio > 0.85  # good, though typically below EHVI's ~0.95+

    def test_validates_observations(self, tiny_spec):
        suggester = ParEGOSuggester(tiny_spec.space)
        with pytest.raises(OptimizationError):
            suggester.add_observation(
                tiny_spec.space.max_configuration(), -1.0, 1.0
            )
        with pytest.raises(OptimizationError):
            suggester.fit()
