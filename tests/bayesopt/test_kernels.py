"""Unit tests for covariance kernels."""

import numpy as np
import pytest

from repro.bayesopt.kernels import Matern52, RBF
from repro.errors import ConfigurationError


@pytest.fixture(params=[Matern52, RBF])
def kernel(request):
    return request.param(lengthscales=[0.5, 1.0, 2.0], variance=1.5)


class TestKernelProperties:
    def test_diagonal_equals_variance(self, kernel, rng):
        x = rng.uniform(size=(6, 3))
        gram = kernel(x, x)
        assert np.allclose(np.diag(gram), kernel.variance)
        assert np.allclose(kernel.diag(x), kernel.variance)

    def test_symmetry(self, kernel, rng):
        x = rng.uniform(size=(8, 3))
        gram = kernel(x, x)
        assert np.allclose(gram, gram.T)

    def test_positive_semidefinite(self, kernel, rng):
        x = rng.uniform(size=(15, 3))
        gram = kernel(x, x)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-8

    def test_decays_with_distance(self, kernel):
        a = np.zeros((1, 3))
        near = np.full((1, 3), 0.1)
        far = np.full((1, 3), 3.0)
        assert kernel(a, near)[0, 0] > kernel(a, far)[0, 0]

    def test_cross_matrix_shape(self, kernel, rng):
        a = rng.uniform(size=(4, 3))
        b = rng.uniform(size=(7, 3))
        assert kernel(a, b).shape == (4, 7)

    def test_ard_lengthscales_weight_dimensions(self, request):
        kernel = Matern52(lengthscales=[0.1, 10.0, 10.0])
        base = np.zeros((1, 3))
        move_sensitive = np.array([[0.3, 0.0, 0.0]])
        move_insensitive = np.array([[0.0, 0.3, 0.0]])
        assert kernel(base, move_sensitive)[0, 0] < kernel(base, move_insensitive)[0, 0]


class TestParameterVector:
    def test_log_roundtrip(self, kernel):
        theta = kernel.get_log_params()
        clone = kernel.clone()
        clone.set_log_params(theta + 0.3)
        clone.set_log_params(theta)
        assert np.allclose(clone.lengthscales, kernel.lengthscales)
        assert clone.variance == pytest.approx(kernel.variance)

    def test_n_params(self, kernel):
        assert kernel.n_params == 4
        assert kernel.get_log_params().shape == (4,)

    def test_set_rejects_wrong_shape(self, kernel):
        with pytest.raises(ConfigurationError):
            kernel.set_log_params(np.zeros(2))

    def test_clone_is_independent(self, kernel):
        clone = kernel.clone()
        clone.set_log_params(clone.get_log_params() + 1.0)
        assert not np.allclose(clone.lengthscales, kernel.lengthscales)


class TestValidation:
    def test_rejects_nonpositive_lengthscales(self):
        with pytest.raises(ConfigurationError):
            Matern52(lengthscales=[1.0, -1.0, 1.0])

    def test_rejects_nonpositive_variance(self):
        with pytest.raises(ConfigurationError):
            RBF(lengthscales=[1.0], variance=0.0)

    def test_rejects_empty_lengthscales(self):
        with pytest.raises(ConfigurationError):
            Matern52(lengthscales=[])


class TestKernelShapes:
    def test_matern_rougher_than_rbf_midrange(self):
        # At moderate distance the Matérn kernel retains more correlation
        # than the RBF (heavier tail), a standard qualitative check.
        matern = Matern52(lengthscales=[1.0])
        rbf = RBF(lengthscales=[1.0])
        a = np.zeros((1, 1))
        b = np.array([[2.0]])
        assert matern(a, b)[0, 0] > rbf(a, b)[0, 0]
