"""Tests for the experiment registry and the cheap drivers.

Campaign-heavy drivers (fig9-13, ablations) are exercised with tiny round
counts; their full-size counterparts live in the benchmark suite.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, get_experiment
from repro.experiments import (
    ablations,
    fig2_spread,
    fig3_gpu_sweep,
    fig4_cpu_sweep,
    fig5_hardware,
    fig9_energy,
    fig11_pareto,
    fig12_sensitivity,
    fig13_overhead,
    tab1_specs,
    tab2_tasks,
    tab3_walkthrough,
)
from repro.sim import clear_campaign_cache

EXPECTED_IDS = {
    "fig2", "fig3", "fig4", "fig5", "tab1", "tab2",
    "fig9", "fig10", "fig11", "tab3", "fig12", "fig13",
    "abl_guardian", "abl_acquisition", "abl_tau", "abl_exploit", "abl_parego",
    "abl_thermal", "ext_accuracy", "ext_fleet", "ext_async_fleet",
    "ext_controllers", "ext_resilience", "ext_servertune",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_get_experiment(self):
        exp = get_experiment("fig9")
        assert callable(exp.run) and callable(exp.render)
        assert exp.description

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")


class TestStaticDrivers:
    """Drivers that need no campaign simulation."""

    def test_fig2_payload(self):
        payload = fig2_spread.run()
        assert len(payload["rows"]) == 3
        for row in payload["rows"]:
            assert row["latency_spread"] > 5.0
            assert row["energy_spread"] > 2.5
        assert "8x" in fig2_spread.render(payload)

    def test_fig3_sweeps_both_cpu_clocks(self):
        payload = fig3_gpu_sweep.run()
        cpus = [s["cpu"] for s in payload["sweeps"]]
        assert cpus == [pytest.approx(0.42), pytest.approx(2.26)]
        assert "GPU" in fig3_gpu_sweep.render(payload)

    def test_fig4_covers_three_models(self):
        payload = fig4_cpu_sweep.run()
        assert [s["workload"] for s in payload["series"]] == [
            "vit", "resnet50", "lstm",
        ]
        assert all(0.6 <= f <= 1.75 for f in payload["cpu_freqs"])

    def test_fig5_ratios_near_paper(self):
        payload = fig5_hardware.run()
        by_name = {r["workload"]: r for r in payload["rows"]}
        assert by_name["vit"]["energy_ratio"] == pytest.approx(0.85, abs=0.02)
        assert by_name["resnet50"]["latency_ratio"] == pytest.approx(0.32, abs=0.02)

    def test_tab1_devices(self):
        payload = tab1_specs.run()
        assert payload["devices"]["agx"]["configurations"] == 2100
        assert payload["devices"]["tx2"]["configurations"] == 936
        assert "Table 1" in tab1_specs.render(payload)

    def test_tab2_t_min_matches_paper(self):
        payload = tab2_tasks.run()
        for row in payload["rows"]:
            for device_name in ("agx", "tx2"):
                measured = row["t_min"][device_name]
                paper = row["paper_t_min"][device_name]
                assert measured == pytest.approx(paper, rel=0.02)


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_campaign_cache()
    yield
    clear_campaign_cache()


class TestCampaignDrivers:
    """Smoke runs with tiny parameters; numbers validated in benchmarks."""

    def test_fig9_driver_small(self):
        payload = fig9_energy.run(ratio=2.0, tasks=("vit",), rounds=4, seed=0)
        data = payload["tasks"]["vit"]
        assert len(data["bofl"]) == 4
        assert len(data["performant"]) == 4
        assert data["missed"] == 0
        out = fig9_energy.render(payload)
        assert "Fig. 9" in out and "improvement" in out

    def test_fig11_driver_small(self):
        payload = fig11_pareto.run(tasks=("vit",), rounds=4, seed=0)
        data = payload["tasks"]["vit"]
        assert data["found_points"] >= 1
        assert 0 < data["hv_ratio"] <= 1.1
        assert "Pareto" in fig11_pareto.render(payload)

    def test_tab3_driver_small(self):
        payload = tab3_walkthrough.run(tasks=("vit",), rounds=4, seed=0)
        data = payload["tasks"]["vit"]
        assert data["total_explored"] >= 1
        assert data["total_pareto"] <= data["total_explored"]
        assert "# Exp" in tab3_walkthrough.render(payload)

    def test_fig12_driver_small(self):
        payload = fig12_sensitivity.run(
            tasks=("vit",), ratios=(2.0,), rounds=4, seed=0
        )
        cell = payload["tasks"]["vit"][2.0]
        assert -1.0 < cell["improvement"] < 1.0
        assert "Fig. 12" in fig12_sensitivity.render(payload)

    def test_fig13_driver_small(self):
        payload = fig13_overhead.run(
            devices=("agx",), tasks=("vit",), rounds=10, seed=0
        )
        agx = payload["per_device"]["agx"]
        assert agx["runs"] >= 1
        assert agx["mean_latency"] > 0
        assert "MBO" in fig13_overhead.render(payload)

    def test_fig13_driver_handles_no_mbo_rounds(self):
        # With too few rounds for phase 2 the driver must degrade cleanly.
        payload = fig13_overhead.run(
            devices=("agx",), tasks=("vit",), rounds=2, seed=0
        )
        assert payload["per_device"]["agx"]["runs"] == 0

    def test_ablation_guardian_small(self):
        payload = ablations.run_guardian(rounds=3, seed=0)
        assert set(payload["variants"]) == {"guardian_on", "guardian_off"}
        assert "guardian" in ablations.render_guardian(payload)

    def test_ablation_exploit_small(self):
        payload = ablations.run_exploit(rounds=3, seed=0)
        assert set(payload["variants"]) == {"ilp_mixture", "single_config"}
        assert "ILP" in ablations.render_exploit(payload)

    def test_ablation_thermal_small(self):
        payload = ablations.run_thermal(rounds=3, seed=0)
        assert set(payload["variants"]) == {"static", "adaptive"}
        assert "thermal" in ablations.render_thermal(payload)

    def test_ext_controllers_small(self):
        from repro.experiments import ext_controllers

        payload = ext_controllers.run(rounds=3, seed=0)
        assert set(payload["results"]) == {
            "bofl", "performant", "oracle", "random_search", "linear_pace", "ondemand",
        }
        assert "scoreboard" in ext_controllers.render(payload)

    def test_ext_fleet_small(self):
        from repro.experiments import ext_fleet

        payload = ext_fleet.run(rounds=2, seed=0)
        assert set(payload["results"]) == {"performant", "bofl"}
        assert len(payload["results"]["bofl"]["per_client"]) == 10
        assert "fleet" in ext_fleet.render(payload)

    def test_ext_accuracy_small(self):
        from repro.experiments import ext_accuracy

        payload = ext_accuracy.run(rounds=2, seed=0)
        performant = payload["results"]["performant"]
        bofl = payload["results"]["bofl"]
        # identical jobs -> identical learning, lower (or equal) energy
        assert bofl["accuracy"] == performant["accuracy"]
        assert "parity" in ext_accuracy.render(payload)

    def test_ext_servertune_small(self):
        from repro.experiments import ext_servertune

        payload = ext_servertune.run(clients=8, rounds=2, seed=0)
        for workload in ("sync", "semisync"):
            assert set(payload["workloads"][workload]) == {
                "static r=2", "static r=3", "static r=4", "fedgpo", "fedtune",
            }
            for point in payload["workloads"][workload].values():
                assert point["energy_per_aggregation"] > 0.0
        assert set(payload["dominant"]) == {"sync", "semisync"}
        assert "server co-optimization" in ext_servertune.render(payload)

    def test_ablation_parego_small(self):
        payload = ablations.run_parego(n_initial=10, batches=1, batch_size=4, seed=0)
        assert set(payload["variants"]) == {"ehvi", "parego", "random"}
        for variant in payload["variants"].values():
            assert 0.0 < variant["hv_ratio"] <= 1.05
            assert variant["evaluations"] == 15
        assert "acquisition" in ablations.render_parego(payload)
