"""Unit tests for evaluation metrics and table rendering."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    energy_spread,
    exploration_summary,
    front_coverage,
    hypervolume_ratio,
    improvement_vs_performant,
    latency_spread,
    regret_vs_oracle,
)
from repro.analysis.tables import ascii_table, format_series, render_kv
from repro.core.records import CampaignResult, RoundRecord
from repro.errors import ConfigurationError


def campaign(controller, energies, phases=None, **overrides):
    result = CampaignResult(
        controller=controller,
        device=overrides.get("device", "agx"),
        task=overrides.get("task", "vit"),
        deadline_ratio=overrides.get("ratio", 2.0),
    )
    for i, energy in enumerate(energies):
        phase = (phases or ["exploitation"] * len(energies))[i]
        result.records.append(
            RoundRecord(
                round_index=i, phase=phase, deadline=50.0, jobs=100,
                elapsed=45.0, energy=energy,
            )
        )
    return result


class TestComparisonMetrics:
    def test_improvement(self):
        bofl = campaign("bofl", [80.0, 80.0])
        performant = campaign("performant", [100.0, 100.0])
        assert improvement_vs_performant(bofl, performant) == pytest.approx(0.2)

    def test_regret(self):
        bofl = campaign("bofl", [105.0])
        oracle = campaign("oracle", [100.0])
        assert regret_vs_oracle(bofl, oracle) == pytest.approx(0.05)

    def test_rejects_incomparable_campaigns(self):
        bofl = campaign("bofl", [80.0])
        other = campaign("performant", [100.0], ratio=4.0)
        with pytest.raises(ConfigurationError):
            improvement_vs_performant(bofl, other)

    def test_rejects_round_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            regret_vs_oracle(campaign("bofl", [1.0]), campaign("oracle", [1.0, 1.0]))

    def test_exploration_summary(self):
        result = campaign(
            "bofl",
            [1.0, 1.0, 1.0],
            phases=["random_exploration", "pareto_construction", "exploitation"],
        )
        result.records[0].explored = [None] * 3  # type: ignore[list-item]
        explore_rounds, explored, exploit_rounds = exploration_summary(result)
        assert explore_rounds == 2
        assert explored == 3
        assert exploit_rounds == 1


class TestSurfaceMetrics:
    def test_spreads_on_real_model(self, agx_vit_model):
        assert latency_spread(agx_vit_model) > 5.0
        assert energy_spread(agx_vit_model) > 2.5

    def test_hypervolume_ratio_bounds(self):
        true = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        found = np.array([[1.0, 3.0], [3.0, 1.0]])
        ratio = hypervolume_ratio(found, true, np.array([4.0, 4.0]))
        assert 0.0 < ratio < 1.0
        assert hypervolume_ratio(true, true, np.array([4.0, 4.0])) == pytest.approx(1.0)

    def test_front_coverage(self):
        true = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        exact = front_coverage(true, true)
        assert exact == pytest.approx(1.0)
        partial = front_coverage(np.array([[1.0, 3.0]]), true)
        assert partial == pytest.approx(1 / 3)
        assert front_coverage(np.zeros((0, 2)), true) == 0.0

    def test_front_coverage_counts_dominating_points(self):
        true = np.array([[2.0, 2.0]])
        better = np.array([[1.0, 1.0]])
        assert front_coverage(better, true) == pytest.approx(1.0)


class TestTables:
    def test_ascii_table_alignment(self):
        out = ascii_table(["a", "bb"], [["x", 1], ["yyyy", 22]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_ascii_table_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            ascii_table(["a"], [["x", "y"]])

    def test_format_series_wraps(self):
        out = format_series(list(range(25)), per_line=10)
        assert out.count("\n") == 2
        assert "[ 10]" in out

    def test_render_kv(self):
        out = render_kv([("name", "x"), ("value", 1.5)], title="K")
        assert "name" in out and "1.500" in out

    def test_render_kv_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            render_kv([])
