"""Round-trip tests for campaign JSON persistence."""

import json

import pytest

from repro.analysis.io import (
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)
from repro.errors import ConfigurationError
from repro.sim import run_campaign


@pytest.fixture(scope="module")
def campaign():
    return run_campaign("agx", "vit", "performant", 2.0, rounds=3, seed=0)


@pytest.fixture(scope="module")
def bofl_campaign():
    # a short BoFL run so records carry explored configs and MBO reports
    return run_campaign("agx", "vit", "bofl", 2.0, rounds=8, seed=0)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, bofl_campaign):
        restored = campaign_from_dict(campaign_to_dict(bofl_campaign))
        assert restored.controller == bofl_campaign.controller
        assert restored.deadline_ratio == bofl_campaign.deadline_ratio
        assert restored.energy_series() == bofl_campaign.energy_series()
        assert restored.deadline_series() == bofl_campaign.deadline_series()
        assert restored.explored_total == bofl_campaign.explored_total
        assert restored.mbo_energy == pytest.approx(bofl_campaign.mbo_energy)
        assert restored.final_front == bofl_campaign.final_front
        for a, b in zip(restored.records, bofl_campaign.records):
            assert a.explored == b.explored
            assert a.guardian_triggered == b.guardian_triggered

    def test_file_roundtrip(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        restored = load_campaign(path)
        assert restored.training_energy == pytest.approx(campaign.training_energy)
        assert restored.rounds == campaign.rounds

    def test_output_is_plain_json(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert isinstance(payload["records"], list)

    def test_mbo_reports_survive(self, bofl_campaign):
        restored = campaign_from_dict(campaign_to_dict(bofl_campaign))
        originals = [r.mbo for r in bofl_campaign.records if r.mbo]
        restoreds = [r.mbo for r in restored.records if r.mbo]
        assert len(originals) == len(restoreds) > 0
        assert restoreds[0].suggestions == originals[0].suggestions


class TestValidation:
    def test_rejects_unknown_version(self, campaign):
        payload = campaign_to_dict(campaign)
        payload["format_version"] = 99
        with pytest.raises(ConfigurationError):
            campaign_from_dict(payload)

    def test_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_campaign(path)
