"""Unit tests for the terminal chart renderers."""

import pytest

from repro.analysis.charts import line_chart, sparkline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_uses_rising_glyphs(self):
        out = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert out == "".join(sorted(out))

    def test_constant_series_is_flat(self):
        out = sparkline([5, 5, 5])
        assert len(set(out)) == 1

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestLineChart:
    def test_contains_legend_and_axis(self):
        out = line_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, height=5)
        assert "* a" in out and "+ b" in out
        assert "|" in out and "-+-" in out

    def test_extremes_labelled(self):
        out = line_chart({"a": [10.0, 90.0]}, height=5)
        assert "90" in out and "10" in out

    def test_markers_land_on_extreme_rows(self):
        out = line_chart({"a": [0.0, 100.0]}, height=6)
        rows = [line for line in out.split("\n") if "|" in line]
        assert "*" in rows[0]  # the max lands on the top row
        assert "*" in rows[-1]  # the min on the bottom row

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            line_chart({"a": [1, 2], "b": [1, 2, 3]})

    def test_rejects_empty_series_dict(self):
        with pytest.raises(ConfigurationError):
            line_chart({})

    def test_rejects_too_small_height(self):
        with pytest.raises(ConfigurationError):
            line_chart({"a": [1, 2]}, height=2)

    def test_width_matches_series_length(self):
        out = line_chart({"a": list(range(17))}, height=4)
        plot_rows = [line for line in out.split("\n") if line.rstrip().endswith("*") or "|" in line]
        widths = {len(line.split("|", 1)[1]) for line in plot_rows if "|" in line}
        assert max(widths) == 17
