"""Fig. 5 — normalized AGX performance relative to TX2 at maximum clocks."""

import pytest

from repro.experiments import fig5_hardware


def test_fig5_hardware_dependence(benchmark, publish):
    payload = benchmark(fig5_hardware.run)
    publish("fig5", fig5_hardware.render(payload))

    rows = {r["workload"]: r for r in payload["rows"]}

    # Energy ratios anchor directly to the paper's 0.85 / 0.70 / 0.80.
    assert rows["vit"]["energy_ratio"] == pytest.approx(0.85, abs=0.03)
    assert rows["resnet50"]["energy_ratio"] == pytest.approx(0.70, abs=0.03)
    assert rows["lstm"]["energy_ratio"] == pytest.approx(0.80, abs=0.03)

    # Latency ratios anchor to Table 2 (see the driver docstring for the
    # paper-internal Fig. 5 / Table 2 inconsistency on LSTM).
    assert rows["vit"]["latency_ratio"] == pytest.approx(0.39, abs=0.02)
    assert rows["resnet50"]["latency_ratio"] == pytest.approx(0.32, abs=0.02)

    # Hardware dependence: the AGX speedup is NOT uniform across models.
    ratios = sorted(r["latency_ratio"] for r in payload["rows"])
    assert ratios[-1] / ratios[0] > 1.2
