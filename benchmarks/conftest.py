"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact: it runs the experiment
driver (campaign results are memoized process-wide, so artifacts sharing
campaigns — fig9/fig11/tab3, fig12/fig13 — pay for them once), prints the
paper-style rows, asserts the qualitative "shape" claims, and times a
representative computational kernel via the ``benchmark`` fixture.

Rendered outputs are also written to ``benchmarks/out/<id>.txt`` so
EXPERIMENTS.md can reference the exact regenerated rows.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def publish(report_dir, capsys):
    """Print a rendered artifact through capture and persist it to disk."""

    def _publish(experiment_id: str, text: str) -> None:
        (report_dir / f"{experiment_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _publish
