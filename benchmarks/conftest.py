"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact: it runs the experiment
driver (campaign results are memoized process-wide, so artifacts sharing
campaigns — fig9/fig11/tab3, fig12/fig13 — pay for them once), prints the
paper-style rows, asserts the qualitative "shape" claims, and times a
representative computational kernel via the ``benchmark`` fixture.

Rendered outputs are also written to ``benchmarks/out/<id>.txt`` so
EXPERIMENTS.md can reference the exact regenerated rows.

Set ``REPRO_BENCH_WORKERS=N`` (N > 1, or 0 for all cores) to precompute
every registered campaign grid through the parallel executor before the
benchmark modules run; the drivers then find all campaigns memoized.
Results are identical to serial execution — only wall-clock changes.
"""

from __future__ import annotations

import os
import pathlib
import re
import sys

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_sessionstart(session):
    """Optionally warm the campaign caches in parallel (opt-in via env)."""
    raw = os.environ.get("REPRO_BENCH_WORKERS", "")
    if not raw:
        return
    workers = None if raw == "0" else int(raw)
    if workers == 1:
        return
    from repro.experiments.registry import EXPERIMENTS
    from repro.sim.executor import CampaignExecutor

    specs, seen = [], set()
    for experiment in EXPERIMENTS.values():
        if experiment.grid is None:
            continue
        for spec in experiment.grid():
            if spec.key() not in seen:
                seen.add(spec.key())
                specs.append(spec)

    def progress(done, total, timing):
        print(f"[prefetch {done}/{total}] {timing.render()}", file=sys.stderr)

    executor = CampaignExecutor(workers=workers, progress=progress)
    report = executor.run(specs)
    print(
        f"prefetched {len(specs)} campaigns in {report.wall_seconds:.1f}s "
        f"on {executor.workers} workers",
        file=sys.stderr,
    )


@pytest.fixture(autouse=True)
def obs_trace(request):
    """Record a per-test observability trace when ``REPRO_OBS_DIR`` is set.

    The benchmark-regression CI job sets the variable and uploads the
    JSONL files as failure diagnostics; locally (unset) this is a no-op
    and benchmarks run with observability disabled, as always.
    """
    trace_dir = os.environ.get("REPRO_OBS_DIR")
    if not trace_dir:
        yield
        return
    from repro import obs

    with obs.session() as session:
        yield
    safe = re.sub(r"[^\w.-]+", "_", request.node.nodeid)
    session.log.dump_jsonl(pathlib.Path(trace_dir) / f"{safe}.jsonl")


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def publish(report_dir, capsys):
    """Print a rendered artifact through capture and persist it to disk."""

    def _publish(experiment_id: str, text: str) -> None:
        (report_dir / f"{experiment_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _publish
