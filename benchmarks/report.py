"""Machine-readable benchmark summary: the CI regression artifact.

Runs a fixed, representative campaign grid under an observability session,
times every cell, and writes one JSON document (``BENCH_<date>.json`` in
CI) recording wall-clock numbers, event/metric totals, and enough
environment detail to make cross-run comparisons meaningful.  The
scheduled benchmark-regression workflow uploads the file as an artifact;
diffing two of them shows where time went.

Usage::

    python benchmarks/report.py --out BENCH_2026-08-06.json \
        [--trace-dir obs-traces] [--rounds 12] [--seeds 0 1]
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import platform
import sys
import time

from repro import obs
from repro._version import __version__
from repro.sim.runner import clear_campaign_cache, run_campaign

#: The timed grid: small enough for a scheduled job, wide enough to touch
#: every controller family the paper compares.
CELLS = tuple(
    (device, task, controller)
    for device in ("agx",)
    for task in ("vit", "lstm")
    for controller in ("bofl", "performant", "oracle")
)


def time_cell(
    device: str, task: str, controller: str, *, rounds: int, seed: int
) -> dict:
    """Run one uncached campaign cell and summarize it."""
    t0 = time.perf_counter()
    result = run_campaign(
        device, task, controller, 2.0, rounds=rounds, seed=seed, use_cache=False
    )
    return {
        "cell": f"{device}/{task}/{controller}/s{seed}",
        "wall_seconds": time.perf_counter() - t0,
        "rounds": rounds,
        "training_energy_j": result.training_energy,
        "mbo_energy_j": result.mbo_energy,
        "missed_rounds": result.missed_rounds,
        "explored_total": result.explored_total,
    }


def build_report(rounds: int, seeds: list[int], trace_dir: str = "") -> dict:
    """Time the whole grid (traced) and assemble the JSON document."""
    clear_campaign_cache()
    cells = []
    with obs.session() as session:
        started = time.perf_counter()
        for seed in seeds:
            for device, task, controller in CELLS:
                cells.append(
                    time_cell(device, task, controller, rounds=rounds, seed=seed)
                )
        total_seconds = time.perf_counter() - started
    if trace_dir:
        session.log.dump_jsonl(pathlib.Path(trace_dir) / "bench_report.jsonl")
    return {
        "schema": 1,
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "repro_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": rounds,
        "seeds": seeds,
        "cells": cells,
        "total_wall_seconds": total_seconds,
        "event_counts": session.log.counts_by_kind(),
        "metrics": session.metrics.snapshot(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument("--trace-dir", default="", help="also dump the obs trace here")
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    args = parser.parse_args(argv)

    report = build_report(args.rounds, args.seeds, trace_dir=args.trace_dir)
    out = args.out or f"BENCH_{datetime.date.today().isoformat()}.json"
    pathlib.Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"{out}: {len(report['cells'])} cells in {report['total_wall_seconds']:.2f}s "
        f"({report['metrics']['counters'].get('controller.rounds', 0):g} controller "
        "rounds traced)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
