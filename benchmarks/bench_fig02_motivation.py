"""Fig. 2 — motivation: DVFS spreads ('8x faster, 4x less energy').

Regenerates the whole-space latency/energy spreads per workload and
benchmarks the full-space profiling kernel (the Oracle's offline pass).
"""

from repro.experiments import fig2_spread
from repro.hardware.devices import jetson_agx
from repro.workloads.zoo import vit


def test_fig2_motivation_spreads(benchmark, publish):
    payload = fig2_spread.run(device="agx")
    publish("fig2", fig2_spread.render(payload))

    for row in payload["rows"]:
        # Paper's claim: ~8x speed spread, ~4x energy spread.  The shape
        # requirement: both spreads are large and speed > energy spread.
        assert row["latency_spread"] > 5.0
        assert row["energy_spread"] > 2.5
        assert row["latency_spread"] > row["energy_spread"]

    # Benchmark the underlying kernel: exhaustive 2100-point profiling.
    model = vit().performance_model(jetson_agx())
    latencies, energies = benchmark(model.profile_space)
    assert latencies.shape == (2100,) and energies.shape == (2100,)
