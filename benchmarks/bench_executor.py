"""Parallel campaign executor: correctness and speedup demonstration.

The acceptance contract of the execution engine, asserted end to end:

1. a 4-seed ``sweep_campaign`` with ``workers=4`` produces results
   identical to the serial run;
2. it completes in measurably less wall-clock time;
3. a second invocation is served entirely from the persistent on-disk
   cache and is faster still.

These are real timing assertions, so this module lives with the
benchmarks (the tier-1 unit suite keeps its determinism-only siblings in
``tests/sim/test_executor.py``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.sim import (
    CampaignExecutor,
    PersistentCampaignCache,
    clear_campaign_cache,
    sweep_campaign,
)

SWEEP = {"rounds": 12, "seeds": (0, 1, 2, 3)}


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("campaign-cache")


def test_parallel_sweep_matches_serial_and_is_faster(publish, cache_dir):
    if (os.cpu_count() or 1) < 2:
        pytest.skip("needs >= 2 cores for a meaningful speedup assertion")

    clear_campaign_cache()
    serial, serial_seconds = _timed(
        lambda: sweep_campaign("agx", "vit", 2.0, use_cache=False, **SWEEP)
    )

    clear_campaign_cache()
    cache = PersistentCampaignCache(cache_dir)
    executor = CampaignExecutor(workers=4, cache=cache)
    parallel, parallel_seconds = _timed(
        lambda: sweep_campaign("agx", "vit", 2.0, executor=executor, **SWEEP)
    )

    # 1. Identical results, cell by cell.
    assert parallel.seeds == serial.seeds
    for seed in serial.seeds:
        for name in ("bofl", "performant", "oracle"):
            assert parallel.campaigns[seed][name] == serial.campaigns[seed][name], (
                seed, name,
            )
    assert parallel.improvement == serial.improvement
    assert parallel.regret == serial.regret

    # 2. Measurably faster: 4 workers on 4 independent seeds must beat the
    # serial loop comfortably even with pool startup overhead.
    assert parallel_seconds < 0.8 * serial_seconds, (
        f"parallel {parallel_seconds:.2f}s vs serial {serial_seconds:.2f}s"
    )

    # 3. A fresh invocation (cold in-memory cache) is served from disk.
    clear_campaign_cache()
    executor2 = CampaignExecutor(workers=4, cache=cache)
    cached, cached_seconds = _timed(
        lambda: sweep_campaign("agx", "vit", 2.0, executor=executor2, **SWEEP)
    )
    assert cached.improvement == serial.improvement
    assert all(t.source == "disk" for t in executor2.timings)
    assert cached_seconds < parallel_seconds / 4

    publish(
        "executor",
        "\n".join(
            [
                "Parallel campaign executor — 4-seed agx/vit sweep, 12 rounds",
                f"serial          : {serial_seconds:8.2f}s",
                f"workers=4       : {parallel_seconds:8.2f}s "
                f"({serial_seconds / parallel_seconds:.2f}x)",
                f"persistent cache: {cached_seconds:8.2f}s "
                f"({cache.stats().entries} entries)",
            ]
        ),
    )


def test_executor_timings_are_observable(cache_dir):
    cache = PersistentCampaignCache(cache_dir)
    executor = CampaignExecutor(workers=2, cache=cache)
    events = []
    executor.progress = lambda done, total, timing: events.append((done, total, timing))
    sweep_campaign("agx", "vit", 2.0, rounds=12, seeds=(0, 1), executor=executor)
    assert [e[0] for e in events] == list(range(1, 7))
    assert all(total == 6 for _, total, _ in events)
    assert {t.source for _, _, t in events} <= {"memory", "disk", "computed"}
