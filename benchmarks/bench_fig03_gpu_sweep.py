"""Fig. 3 — ViT latency/energy vs GPU frequency at two CPU clocks."""

import numpy as np

from repro.experiments import fig3_gpu_sweep


def test_fig3_gpu_frequency_sweep(benchmark, publish):
    payload = benchmark(fig3_gpu_sweep.run)
    publish("fig3", fig3_gpu_sweep.render(payload))

    slow_cpu, fast_cpu = payload["sweeps"]
    assert slow_cpu["cpu"] < fast_cpu["cpu"]

    gpu = np.array([p["gpu"] for p in slow_cpu["points"]])
    # The paper's Fig. 3 plots the upper GPU range (~0.9-1.3 GHz); restrict
    # the shape assertions to clocks >= 0.7 GHz accordingly.
    plotted = gpu >= 0.7
    slow_lat = np.array([p["latency"] for p in slow_cpu["points"]])[plotted]
    fast_lat = np.array([p["latency"] for p in fast_cpu["points"]])[plotted]
    slow_en = np.array([p["energy"] for p in slow_cpu["points"]])[plotted]
    fast_en = np.array([p["energy"] for p in fast_cpu["points"]])[plotted]

    # (a) diminishing GPU returns under the slow CPU, strong under the fast.
    assert slow_lat[0] / slow_lat[-1] < 1.5
    assert fast_lat[0] / fast_lat[-1] > 1.6
    # latency never increases with GPU frequency
    assert np.all(np.diff(slow_lat) <= 1e-12)
    assert np.all(np.diff(fast_lat) <= 1e-12)

    # (b) energy is non-monotone and the slow-CPU advantage shrinks with
    # GPU clock — the crossover structure of Fig. 3b.
    low, high = 0, slow_en.size - 1
    advantage_low = fast_en[low] - slow_en[low]
    advantage_high = fast_en[high] - slow_en[high]
    assert advantage_low > 0.3
    assert advantage_high < advantage_low / 2
    diffs = np.diff(fast_en)
    assert np.any(diffs < 0) and np.any(diffs > 0)  # non-monotone
