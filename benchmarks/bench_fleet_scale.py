"""Fleet-scale gates: the vectorized event engine's speed and parity bars.

Three hard thresholds back the million-client story:

* at 10k clients the vectorized drain beats the legacy per-event loop by
  >= 2x on the same prepared traces while staying byte-identical;
* ``detail="stats"`` composes a 10k-client async campaign in well under a
  second per call (the regime where report materialization, not event
  resolution, dominates);
* the columnar trace container is measurably smaller than row-per-event
  JSONL for the same deterministic event stream.

CI's fleet-scale job runs this module plus the ``slow``-marked smokes in
``tests/sim/test_fleet_scale.py`` (10k/100k clients under wall-clock and
peak-RSS ceilings).
"""

import json
import time

import pytest

from repro.obs import runtime as obs
from repro.obs.columnar import write_columnar
from repro.sim.fleet import FleetSpec, compose_fleet, prepare_fleet

SCALE_SPEC = FleetSpec(
    n_clients=10_000, rounds=5, mode="async", buffer_size=1_000, seed=0
)

CACHE = {}


@pytest.fixture(scope="module")
def clients():
    if "clients" not in CACHE:
        CACHE["clients"] = prepare_fleet(SCALE_SPEC)
    return CACHE["clients"]


def test_vectorized_beats_legacy(benchmark, publish, clients):
    """>= 2x over the legacy loop at 10k clients, byte-identical results."""
    t0 = time.perf_counter()
    legacy = compose_fleet(SCALE_SPEC, clients, engine="legacy")
    legacy_s = time.perf_counter() - t0

    result = benchmark(compose_fleet, SCALE_SPEC, clients)
    vectorized_s = benchmark.stats.stats.min
    speedup = legacy_s / vectorized_s

    assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
        legacy.to_dict(), sort_keys=True
    )
    publish(
        "fleet_scale",
        "\n".join(
            [
                "fleet scale (10k clients, async, buffer 1000)",
                f"  legacy loop      {legacy_s * 1e3:9.1f} ms",
                f"  vectorized       {vectorized_s * 1e3:9.1f} ms",
                f"  speedup          {speedup:9.1f} x",
            ]
        ),
    )
    assert speedup >= 2.0, f"vectorized only {speedup:.2f}x over legacy"


def test_stats_detail_latency(benchmark, clients):
    """The O(flushes)-materialization path stays under 1 s per compose."""
    result = benchmark(compose_fleet, SCALE_SPEC, clients, detail="stats")
    assert benchmark.stats.stats.min < 1.0
    assert all(r.stats is not None for r in result.rounds)
    assert not any(r.reports for r in result.rounds)


def test_columnar_trace_is_smaller(tmp_path, clients):
    """Columnar beats JSONL on bytes for the identical event stream."""
    spec = FleetSpec(n_clients=500, rounds=3, mode="async", buffer_size=50)
    small = prepare_fleet(spec)
    with obs.session(deterministic=True) as session:
        compose_fleet(spec, small)
    jsonl = session.log.dump_jsonl(tmp_path / "trace.jsonl")
    columnar = write_columnar(tmp_path / "trace.col", list(session.log))
    ratio = columnar.stat().st_size / jsonl.stat().st_size
    assert ratio < 0.75, f"columnar/jsonl size ratio {ratio:.2f}"
