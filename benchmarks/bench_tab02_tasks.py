"""Table 2 — FL task specifications with measured T_min."""

import pytest

from repro.experiments import tab2_tasks


def test_tab2_task_specifications(benchmark, publish):
    payload = benchmark(tab2_tasks.run)
    publish("tab2", tab2_tasks.render(payload))

    for row in payload["rows"]:
        for device_name in ("agx", "tx2"):
            measured = row["t_min"][device_name]
            paper = row["paper_t_min"][device_name]
            # measured rounds at x_max land within 2% of the paper's T_min
            assert measured == pytest.approx(paper, rel=0.02), (
                row["task"], device_name,
            )
    assert payload["deadline_ratios"] == (2.0, 2.5, 3.0, 3.5, 4.0)
