"""Service-level benchmarks and the CI latency/determinism gates.

The pace-decision service answers fleet-scale traffic with three cost
classes — decision-cache hits (microseconds), coalesced joins (free:
they share an in-flight evaluation) and full profile + ILP evaluations
(milliseconds).  The gates below pin the service-level agreement the CI
``service-smoke`` job enforces:

* **p99 latency** — the end-to-end simulated decision latency of a
  60-client fleet replay stays under :data:`P99_GATE_SECONDS`, and a
  warm second pass stays under :data:`WARM_P99_GATE_SECONDS`;
* **cache effectiveness** — the second replay of the same trace serves
  at least :data:`WARM_HIT_RATE_FLOOR` of probes from the decision
  cache;
* **coalescing** — archetype mates arriving within one wave actually
  share evaluations (ratio strictly positive);
* **determinism** — two identically-seeded replays emit byte-identical
  decision logs (the same property the CI job checks through the CLI).

Everything gated here is simulated time, hence exactly reproducible;
the ``benchmark`` fixture separately times the wall-clock cost of one
replay so throughput regressions still show up in ``BENCH_*.json``.
"""

from __future__ import annotations

import pytest

from repro.service import (
    DecisionRequest,
    PaceDecisionService,
    ServiceConfig,
    fleet_requests,
    run_loadtest,
)
from repro.sim.fleet import FleetSpec

#: The CI smoke fleet: 60 clients, 3 rounds, 2 passes, one pinned seed.
SMOKE_SPEC = FleetSpec(n_clients=60, rounds=3, seed=7)
SMOKE_RATE = 200.0
SMOKE_PASSES = 2

#: Simulated-latency SLA. Cold pass 1 queues behind first-touch profile
#: builds, so the overall p99 is dominated by the 0.25 s watchdog budget;
#: a warm pass must answer from cache in well under a millisecond.
P99_GATE_SECONDS = 0.30
WARM_P99_GATE_SECONDS = 0.005
WARM_HIT_RATE_FLOOR = 0.50


@pytest.fixture(scope="module")
def smoke_report():
    return run_loadtest(SMOKE_SPEC, rate=SMOKE_RATE, passes=SMOKE_PASSES)


def test_p99_latency_gate(smoke_report):
    assert smoke_report.p99 <= P99_GATE_SECONDS, (
        f"p99 {smoke_report.p99 * 1e3:.3f} ms exceeds the "
        f"{P99_GATE_SECONDS * 1e3:.0f} ms gate"
    )
    warm = smoke_report.per_pass[-1]
    assert warm.p99 <= WARM_P99_GATE_SECONDS, (
        f"warm-pass p99 {warm.p99 * 1e3:.3f} ms exceeds the "
        f"{WARM_P99_GATE_SECONDS * 1e3:.1f} ms gate"
    )


def test_warm_pass_cache_hit_rate(smoke_report):
    warm = smoke_report.per_pass[-1]
    assert warm.cache_hit_rate >= WARM_HIT_RATE_FLOOR, (
        f"second-pass hit rate {warm.cache_hit_rate:.1%} below "
        f"{WARM_HIT_RATE_FLOOR:.0%}"
    )


def test_coalescing_occurs(smoke_report):
    assert smoke_report.stats.coalesced > 0
    assert 0.0 < smoke_report.stats.coalescing_ratio < 1.0


def test_no_degradation_at_smoke_rate(smoke_report):
    # 200 req/s against one simulated solver lane is inside the SLA; any
    # timeout or rejection here means the cost model or queue regressed.
    assert smoke_report.stats.timeouts == 0
    assert smoke_report.stats.rejections == 0


def test_replay_is_byte_deterministic(smoke_report):
    again = run_loadtest(SMOKE_SPEC, rate=SMOKE_RATE, passes=SMOKE_PASSES)
    assert smoke_report.decision_log_lines() == again.decision_log_lines()


def test_decision_wall_clock(benchmark):
    """Wall-clock cost of answering one warm request (the common path)."""
    profile_warmer = PaceDecisionService(ServiceConfig())
    trace = fleet_requests(SMOKE_SPEC, SMOKE_RATE)
    request = trace[0].request

    def decide_warm():
        service = PaceDecisionService(ServiceConfig())
        service._warm_archetypes = profile_warmer._warm_archetypes
        return service.decide(request)

    decision = benchmark(decide_warm)
    assert decision.plan.total_jobs == request.jobs


def test_replay_wall_clock(benchmark):
    """Wall-clock cost of a full 60-client two-pass replay."""
    report = benchmark.pedantic(
        lambda: run_loadtest(SMOKE_SPEC, rate=SMOKE_RATE, passes=SMOKE_PASSES),
        rounds=3,
        iterations=1,
    )
    assert report.requests == SMOKE_SPEC.n_clients * SMOKE_SPEC.rounds * SMOKE_PASSES


def test_synchronous_decide_roundtrip():
    """The request/response API answers a single cold question correctly."""
    service = PaceDecisionService()
    request = DecisionRequest(
        device="agx", task="vit", jobs=100, deadline=120.0, client_id="dev-0"
    )
    decision = service.decide(request)
    assert decision.plan.source == "computed"
    assert decision.plan.total_jobs == 100
    assert decision.plan.expected_latency <= 120.0
    # The identical question again is a cache hit.
    repeat = service.decide(request)
    assert repeat.plan.source == "cache"
    assert repeat.plan.steps == decision.plan.steps
