"""Table 3 — explorations and searched Pareto points per round.

Reuses the Fig. 9 campaigns.  The paper's walkthrough: ~21 random starting
points (1% of the space), batches of up to 10 MBO suggestions per phase-2
round, ~66-70 total explorations, and most front points found by the MBO.
"""

import pytest

from repro.experiments import tab3_walkthrough

PAYLOAD = {}


@pytest.fixture(scope="module")
def payload():
    if "tab3" not in PAYLOAD:
        PAYLOAD["tab3"] = tab3_walkthrough.run(ratio=2.0, rounds=40, seed=0)
    return PAYLOAD["tab3"]


def test_tab3_walkthrough(benchmark, publish, payload):
    publish("tab3", tab3_walkthrough.render(payload))
    benchmark(tab3_walkthrough.render, payload)

    for task, data in payload["tasks"].items():
        random_explored = sum(
            r["explored"] for r in data["rows"] if r["phase"] == "random_exploration"
        )
        # phase 1 explores x_max + the 1% Sobol sample = 22 configurations.
        assert random_explored == 22, task
        # total explorations in the paper's ballpark (66-70).
        assert 50 <= data["total_explored"] <= 95, (task, data["total_explored"])
        # per-round batches never exceed the MBO cap.
        assert all(
            r["explored"] <= 10
            for r in data["rows"]
            if r["phase"] == "pareto_construction"
        ), task


def test_tab3_mbo_finds_most_front_points(benchmark, payload):
    benchmark(lambda: [d["rows"] for d in payload["tasks"].values()])
    # Table 3's key observation: "most of Pareto front points ... are
    # searched in the second phase" (e.g. ViT: 18 of 20).
    for task, data in payload["tasks"].items():
        mbo_pareto = sum(
            r["pareto"] for r in data["rows"] if r["phase"] == "pareto_construction"
        )
        assert data["total_pareto"] >= 8, task
        assert mbo_pareto / data["total_pareto"] > 0.5, (
            task, mbo_pareto, data["total_pareto"],
        )
