"""Fig. 10 — per-round energy over the first 40 rounds at T_max/T_min = 4.

Longer deadlines: fewer exploration rounds (more configurations fit per
round), lower exploitation energy than Fig. 9.
"""

import pytest

from repro.experiments import fig9_energy

PAYLOAD = {}


@pytest.fixture(scope="module")
def payloads():
    if not PAYLOAD:
        PAYLOAD["r4"] = fig9_energy.run(ratio=4.0, rounds=40, seed=0)
        PAYLOAD["r2"] = fig9_energy.run(ratio=2.0, rounds=40, seed=0)
    return PAYLOAD


def test_fig10_energy_curves(benchmark, publish, payloads):
    payload = payloads["r4"]
    publish("fig10", fig9_energy.render(payload))
    benchmark(fig9_energy.render, payload)

    for task, data in payload["tasks"].items():
        assert data["missed"] == 0, task
        assert 0.12 < data["improvement"] < 0.45, (task, data["improvement"])
        assert data["regret"] < 0.08, (task, data["regret"])


def test_fig10_longer_deadlines_explore_in_fewer_rounds(benchmark, payloads):
    benchmark(lambda: [d["phases"] for d in payloads["r4"]["tasks"].values()])
    # §6.4: "BoFL explores 10 rounds before exploitation when r=2, while
    # only explores 6 rounds when r=4".
    for task in payloads["r4"]["tasks"]:
        def exploration_rounds(payload):
            lo, hi = payload["tasks"][task]["phases"]["exploitation"][0], None
            return lo  # exploitation starts after the exploration rounds
        assert exploration_rounds(payloads["r4"]) <= exploration_rounds(
            payloads["r2"]
        ), task


def test_fig10_improvement_exceeds_fig9(benchmark, payloads):
    benchmark(lambda: [d["improvement"] for d in payloads["r4"]["tasks"].values()])
    for task in payloads["r4"]["tasks"]:
        assert (
            payloads["r4"]["tasks"][task]["improvement"]
            > payloads["r2"]["tasks"][task]["improvement"]
        ), task
