"""Extension — federation disciplines (sync / semi-sync / async).

Regenerates ``ext_async_fleet`` and asserts the scaling story: buffered
asynchronous aggregation cuts mean round latency well past the 10 %
acceptance bar versus synchronous FedAvg while accounting for byte-equal
aggregate energy (both disciplines consume every client's full trace).
The timed kernel is the composition step — trace gathering is memoized.
"""

import pytest

from repro.experiments import ext_async_fleet
from repro.sim.fleet import compose_fleet, prepare_fleet

PAYLOAD = {}


@pytest.fixture(scope="module")
def payload():
    if "ext_async_fleet" not in PAYLOAD:
        PAYLOAD["ext_async_fleet"] = ext_async_fleet.run()
    return PAYLOAD["ext_async_fleet"]


def test_async_fleet_disciplines(benchmark, publish, payload):
    publish("ext_async_fleet", ext_async_fleet.render(payload))
    benchmark(ext_async_fleet.render, payload)

    modes = payload["modes"]
    # The acceptance bar: >= 10 % lower mean round latency than sync at
    # equal aggregate energy accounting.
    assert payload["async_latency_reduction"] >= 0.10, payload
    assert payload["energy_parity"] < 1e-9, payload["energy_parity"]
    # Async staleness is real but bounded by the buffer discipline.
    assert modes["async"]["mean_staleness"] > 0
    # Semi-sync cuts stragglers relative to sync's blocking rounds.
    assert modes["semisync"]["mean_round_latency"] < modes["sync"]["mean_round_latency"]
    assert modes["semisync"]["cutoff_reports"] > 0


def test_async_fleet_compose_kernel(benchmark, payload):
    """Time the pure composition over prepared traces (campaigns memoized)."""
    base = ext_async_fleet.base_spec()
    clients = prepare_fleet(base, workers=1)
    spec = ext_async_fleet.mode_spec(base, "async")
    result = benchmark(compose_fleet, spec, clients)
    assert result.aggregations == payload["modes"]["async"]["aggregations"]
