"""Extension — 10-client heterogeneous fleet under synchronous FedAvg.

Regenerates the ``ext_fleet`` artifact (fleet-level energy, BoFL vs
Performant pacing) and asserts its shape claims; the golden-trace test in
``tests/federated/test_fleet_golden.py`` pins the exact numbers at a
smaller round count.
"""

import pytest

from repro.experiments import ext_fleet

PAYLOAD = {}


@pytest.fixture(scope="module")
def payload():
    if "ext_fleet" not in PAYLOAD:
        PAYLOAD["ext_fleet"] = ext_fleet.run(rounds=25, deadline_ratio=2.5, seed=0)
    return PAYLOAD["ext_fleet"]


def test_ext_fleet_energy(benchmark, publish, payload):
    publish("ext_fleet", ext_fleet.render(payload))
    benchmark(ext_fleet.render, payload)

    performant = payload["results"]["performant"]
    bofl = payload["results"]["bofl"]
    # BoFL pacing saves fleet energy without creating stragglers.
    assert payload["fleet_saving"] > 0.10, payload["fleet_saving"]
    assert bofl["fleet_energy"] < performant["fleet_energy"]
    assert bofl["stragglers"] == 0, bofl["stragglers"]
    # Every client individually saves (the per-device claim composes).
    for client_id, p_energy in performant["per_client"].items():
        assert bofl["per_client"][client_id] < p_energy, client_id
