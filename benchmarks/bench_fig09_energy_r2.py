"""Fig. 9 — per-round energy over the first 40 rounds at T_max/T_min = 2.

The campaign trio (BoFL / Performant / Oracle) per task is computed once
(memoized for fig11/tab3); the benchmark times the analysis step.
"""

import pytest

from repro.experiments import fig9_energy

PAYLOAD = {}


@pytest.fixture(scope="module")
def payload():
    if "fig9" not in PAYLOAD:
        PAYLOAD["fig9"] = fig9_energy.run(ratio=2.0, rounds=40, seed=0)
    return PAYLOAD["fig9"]


def test_fig9_energy_curves(benchmark, publish, payload):
    publish("fig9", fig9_energy.render(payload))
    benchmark(fig9_energy.render, payload)

    for task, data in payload["tasks"].items():
        # Deadline safety: BoFL never misses.
        assert data["missed"] == 0, task
        # BoFL saves substantially vs Performant and stays near Oracle.
        assert 0.10 < data["improvement"] < 0.40, (task, data["improvement"])
        assert data["regret"] < 0.10, (task, data["regret"])
        # Phase structure exists and exploitation dominates the campaign.
        assert set(data["phases"]) == {
            "random_exploration", "pareto_construction", "exploitation",
        }
        exploit_lo, exploit_hi = data["phases"]["exploitation"]
        assert exploit_hi - exploit_lo + 1 >= 25  # > 60% of 40 rounds


def test_fig9_bofl_tracks_oracle_in_exploitation(benchmark, payload):
    benchmark(lambda: [sum(d["bofl"]) for d in payload["tasks"].values()])
    for task, data in payload["tasks"].items():
        exploit_lo, _ = data["phases"]["exploitation"]
        bofl_tail = sum(data["bofl"][exploit_lo:])
        oracle_tail = sum(data["oracle"][exploit_lo:])
        assert bofl_tail / oracle_tail - 1 < 0.06, task


def test_fig9_performant_is_flat(benchmark, payload):
    # Performant's per-round energy barely varies (always x_max).
    benchmark(lambda: [max(d["performant"]) for d in payload["tasks"].values()])
    for task, data in payload["tasks"].items():
        series = data["performant"]
        spread = (max(series) - min(series)) / (sum(series) / len(series))
        assert spread < 0.05, task
