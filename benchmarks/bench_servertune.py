"""Servertune PBT driver: determinism gate and cache-reuse throughput.

The PBT driver's performance claim is structural: every member
evaluation rides the campaign cache, so archetype traces are shared
across the population and surviving members' campaigns are pure cache
hits in later generations.  An "independent grid" evaluating the same
member specs with a cold cache per evaluation pays the full trace
preparation every time.  This module pins both halves:

1. **determinism** — two identically-seeded PBT runs produce identical
   frontier artifacts (the same property the CI ``servertune-smoke``
   job checks byte-for-byte through the CLI);
2. **throughput** — the PBT run completes the same evaluations in less
   wall-clock time than the cache-less independent grid (a loose gate:
   real timing, so only the ordering is asserted).
"""

from __future__ import annotations

import dataclasses
import time

from repro.servertune.pbt import PBTSpec, run_pbt
from repro.sim import clear_campaign_cache
from repro.sim.fleet import FleetSpec, compose_fleet, prepare_fleet

#: Small but not trivial: 8 clients over 2 archetypes means every
#: member evaluation collapses eight clients onto two campaign traces.
BENCH_FLEET = FleetSpec(n_clients=8, rounds=3, archetypes=2, seed=7)
BENCH_PBT = PBTSpec(population=4, generations=2, seed=7)


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_pbt_is_deterministic():
    clear_campaign_cache()
    first = run_pbt(BENCH_PBT, BENCH_FLEET)
    again = run_pbt(BENCH_PBT, BENCH_FLEET)
    assert first.to_dict() == again.to_dict()
    assert first.population == again.population
    assert first.baseline.score == 1.0
    assert first.frontier


def test_pbt_beats_independent_grid_throughput(publish):
    clear_campaign_cache()
    result, pbt_seconds = _timed(lambda: run_pbt(BENCH_PBT, BENCH_FLEET))

    # The exact member specs PBT evaluated, plus the static baseline.
    specs = [None] + [r.spec for r in result.history]

    def independent_grid():
        for spec in specs:
            clear_campaign_cache()  # no sharing: every evaluation is cold
            candidate = dataclasses.replace(BENCH_FLEET, servertune=spec)
            clients = prepare_fleet(candidate)
            compose_fleet(candidate, clients)

    _, grid_seconds = _timed(independent_grid)

    assert pbt_seconds < grid_seconds, (
        f"PBT {pbt_seconds:.2f}s should undercut the cache-less grid "
        f"{grid_seconds:.2f}s over {len(specs)} evaluations"
    )

    evaluations = len(specs)
    publish(
        "servertune",
        "\n".join(
            [
                "Servertune PBT vs independent grid — "
                f"{BENCH_FLEET.n_clients} clients / {BENCH_FLEET.rounds} rounds, "
                f"{BENCH_PBT.population} members x {BENCH_PBT.generations} generations",
                f"PBT (shared campaign cache): {pbt_seconds:8.2f}s "
                f"({evaluations / pbt_seconds:.1f} eval/s)",
                f"independent grid (cold)    : {grid_seconds:8.2f}s "
                f"({evaluations / grid_seconds:.1f} eval/s)",
                f"speedup                    : {grid_seconds / pbt_seconds:8.2f}x",
                f"best member: {result.best.controller} "
                f"score {result.best.score:.4f} vs static 1.0",
            ]
        ),
    )
