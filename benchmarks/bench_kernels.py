"""Micro-benchmarks of the computational kernels behind the controller.

These are the operations whose cost the paper's Fig. 13 measures on real
boards: GP refits, batched EHVI suggestion, and the exploitation-phase
ILP.  The paper reports <20 ms per ILP solve on Gurobi; our from-scratch
branch-and-bound must stay in that class.
"""

import numpy as np
import pytest

from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.optimizer import MultiObjectiveBayesianOptimizer
from repro.bayesopt.pareto import pareto_mask
from repro.bayesopt.sampling import sobol_configurations
from repro.hardware.devices import jetson_agx
from repro.ilp.schedule import ScheduleProblem, solve_schedule
from repro.workloads.zoo import vit


#: Wall-clock of the same benchmarks on the pre-fast-path kernels
#: (recorded in EXPERIMENTS.md, "MBO kernel fast path"); the ratio gates
#: below keep the rank-1/pruned-argmax/cached-posterior speedups from
#: silently regressing.
PRE_FASTPATH_SUGGEST_SECONDS = 0.150
PRE_FASTPATH_CAMPAIGN_SECONDS = 1.78
SUGGEST_SPEEDUP_FLOOR = 5.0
CAMPAIGN_SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def agx_observations():
    spec = jetson_agx()
    model = vit().performance_model(spec)
    configs = sobol_configurations(spec.space, 60, seed=0)
    x = spec.space.normalize_many(configs)
    y = np.array([model.objectives(c) for c in configs])
    return spec, model, configs, x, y


def test_gp_fit_60_observations(benchmark, agx_observations):
    _, _, _, x, y = agx_observations

    def fit():
        gp = GaussianProcess()
        gp.fit(x, y[:, 0])
        return gp.log_marginal_likelihood()

    lml = benchmark(fit)
    assert np.isfinite(lml)


def test_gp_hyperparameter_optimization(benchmark, agx_observations):
    _, _, _, x, y = agx_observations

    def fit_and_tune():
        gp = GaussianProcess()
        gp.fit(x, y[:, 0])
        return gp.optimize_hyperparameters(np.random.default_rng(0), n_restarts=1)

    lml = benchmark.pedantic(fit_and_tune, rounds=3, iterations=1)
    assert np.isfinite(lml)


def test_mbo_suggestion_batch(benchmark, agx_observations):
    spec, model, configs, _, _ = agx_observations

    optimizer = MultiObjectiveBayesianOptimizer(spec.space, seed=0, fit_restarts=0)
    for config in configs:
        optimizer.add_observation(config, *model.objectives(config))
    optimizer.fit(optimize_hyperparameters=False)

    picks = benchmark.pedantic(
        lambda: optimizer.suggest(10), rounds=5, iterations=2
    )
    assert len(picks) == 10
    # The fast path (rank-1 extensions, pruned-but-exact argmax, cached
    # candidate posterior) must hold a 5x margin over the pre-fast-path
    # kernels; the first round pays the posterior build, the rest reuse
    # it.  Gate on the fastest round — the least contention-noisy stat.
    assert benchmark.stats["min"] < (
        PRE_FASTPATH_SUGGEST_SECONDS / SUGGEST_SPEEDUP_FLOOR
    )


def test_mbo_campaign_to_60_observations(benchmark, agx_observations):
    """Five fit+suggest+observe rounds from 10 sobol seeds to 60 points."""
    spec, model, configs, _, _ = agx_observations

    def campaign():
        optimizer = MultiObjectiveBayesianOptimizer(
            spec.space, seed=0, fit_restarts=1
        )
        for config in configs[:10]:
            optimizer.add_observation(config, *model.objectives(config))
        for _ in range(5):
            optimizer.fit()
            for config in optimizer.suggest(10):
                optimizer.add_observation(config, *model.objectives(config))
        return optimizer.n_observations

    n_observations = benchmark.pedantic(campaign, rounds=3, iterations=1)
    assert n_observations == 60
    # End-to-end (refits hit the warm-start path, every suggest is a cold
    # cache) the campaign must hold a 3x margin over the pre-fast-path run.
    assert benchmark.stats["min"] < (
        PRE_FASTPATH_CAMPAIGN_SECONDS / CAMPAIGN_SPEEDUP_FLOOR
    )


def test_exploitation_ilp_under_20ms(benchmark, agx_observations):
    """The paper's Gurobi solves Eqn. 1 'within 20ms'; so must we."""
    _, model, _, _, _ = agx_observations
    latencies, energies = model.profile_space()
    mask = pareto_mask(np.stack([latencies, energies], axis=1))
    problem = ScheduleProblem(
        latencies[mask], energies[mask], jobs=200, deadline=float(latencies.min() * 200 * 1.5)
    )
    counts = benchmark(solve_schedule, problem)
    assert counts.sum() == 200
    assert benchmark.stats["mean"] < 0.020  # the paper's 20 ms bar


def test_full_space_profiling(benchmark, agx_observations):
    _, model, _, _, _ = agx_observations
    latencies, energies = benchmark(model.profile_space)
    assert latencies.size == 2100 and energies.size == 2100
