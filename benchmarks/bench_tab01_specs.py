"""Table 1 — testbed hardware specifications."""

from repro.experiments import tab1_specs


def test_tab1_hardware_specs(benchmark, publish):
    payload = benchmark(tab1_specs.run)
    publish("tab1", tab1_specs.render(payload))

    assert payload["devices"]["agx"]["configurations"] == 2100
    assert payload["devices"]["tx2"]["configurations"] == 936
    agx_rows = dict(payload["devices"]["agx"]["rows"])
    assert "25 steps" in agx_rows["CPU frequencies"]
    assert "14 steps" in agx_rows["GPU frequencies"]
    assert "6 steps" in agx_rows["Memory frequencies"]
