"""Fig. 11 — BoFL's searched Pareto front vs the actual front.

Reuses the Fig. 9 campaigns (same ratio/rounds/seed, memoized).  Also
benchmarks the exact 2-D EHVI kernel over the full AGX candidate space —
the computation BoFL runs between rounds.
"""

import numpy as np
import pytest

from repro.bayesopt.acquisition import expected_hypervolume_improvement
from repro.experiments import fig11_pareto

PAYLOAD = {}


@pytest.fixture(scope="module")
def payload():
    if "fig11" not in PAYLOAD:
        PAYLOAD["fig11"] = fig11_pareto.run(ratio=2.0, rounds=40, seed=0)
    return PAYLOAD["fig11"]


def test_fig11_front_quality(benchmark, publish, payload):
    publish("fig11", fig11_pareto.render(payload))
    benchmark(fig11_pareto.render, payload)
    for task, data in payload["tasks"].items():
        # "BoFL can successfully find a close approximation to the actual
        # Pareto front over all three tasks."
        assert data["hv_ratio"] > 0.95, (task, data["hv_ratio"])
        assert data["coverage"] > 0.5, (task, data["coverage"])
        # "the Pareto front can be efficiently constructed after exploring
        # just 3% of the whole configuration space" — allow up to 6%.
        assert data["explored_fraction"] < 0.06, (task, data["explored_fraction"])
        # a searched front of reasonable size, as in the paper's Table 3
        # (13-20 points over the three tasks).
        assert 8 <= data["found_points"] <= 40, task


def test_fig11_fronts_are_valid(benchmark, payload):
    benchmark(lambda: [np.array(d["found_front"]) for d in payload["tasks"].values()])
    for task, data in payload["tasks"].items():
        front = np.array(sorted(data["found_front"]))
        # staircase structure: latency ascending implies energy descending
        assert np.all(np.diff(front[:, 0]) >= 0)
        assert np.all(np.diff(front[:, 1]) <= 1e-9)


def test_fig11_ehvi_kernel_speed(benchmark):
    """Time EHVI over a 2100-point candidate set with a 20-point front."""
    rng = np.random.default_rng(0)
    mean = rng.uniform(0.2, 0.5, size=(2100, 2))
    var = rng.uniform(1e-4, 1e-2, size=(2100, 2))
    front = np.sort(rng.uniform(0.2, 0.4, size=(20, 2)), axis=0)
    front[:, 1] = front[::-1, 1]
    reference = np.array([0.6, 0.6])
    values = benchmark(
        expected_hypervolume_improvement, mean, var, front, reference
    )
    assert values.shape == (2100,)
    assert np.all(values >= 0)
