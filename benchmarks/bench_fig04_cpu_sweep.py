"""Fig. 4 — three models' training performance vs CPU frequency."""

import numpy as np

from repro.experiments import fig4_cpu_sweep


def series_of(payload, name):
    data = next(s for s in payload["series"] if s["workload"] == name)
    lat = np.array([p["latency"] for p in data["points"]])
    en = np.array([p["energy"] for p in data["points"]])
    return lat, en


def test_fig4_cpu_frequency_sweep(benchmark, publish):
    payload = benchmark(fig4_cpu_sweep.run)
    publish("fig4", fig4_cpu_sweep.render(payload))

    vit_lat, vit_en = series_of(payload, "vit")
    resnet_lat, resnet_en = series_of(payload, "resnet50")
    lstm_lat, lstm_en = series_of(payload, "lstm")

    # (a) ViT and ResNet50 latencies "almost remain the same"; the LSTM
    # roughly halves over the plotted range.
    assert vit_lat[0] / vit_lat[-1] < 1.3
    assert resnet_lat[0] / resnet_lat[-1] < 1.2
    assert lstm_lat[0] / lstm_lat[-1] > 1.8

    # (b) ResNet50's energy rises with CPU clock; the LSTM's falls.
    assert resnet_en[-1] > resnet_en[0]
    assert lstm_en[-1] < lstm_en[0]
    # NN-model dependence: the three energy trends are not all the same sign.
    trends = [vit_en[-1] - vit_en[0], resnet_en[-1] - resnet_en[0], lstm_en[-1] - lstm_en[0]]
    assert max(trends) > 0 > min(trends)
