"""Ablation benches for the design choices DESIGN.md calls out.

* guardian on/off under tight deadlines (deadline-miss safety);
* EHVI vs random phase-2 suggestions (acquisition value);
* tau sensitivity (measurement-duration trade-off);
* ILP mixture vs single-configuration exploitation.
"""

import pytest

from repro.experiments import ablations

PAYLOAD = {}


def _memo(key, fn, **kwargs):
    if key not in PAYLOAD:
        PAYLOAD[key] = fn(**kwargs)
    return PAYLOAD[key]


def test_abl_guardian(benchmark, publish):
    payload = _memo("guardian", ablations.run_guardian, ratio=1.3, rounds=30, seed=0)
    publish("abl_guardian", ablations.render_guardian(payload))
    benchmark(ablations.render_guardian, payload)

    on = payload["variants"]["guardian_on"]
    off = payload["variants"]["guardian_off"]
    # The safe exploration algorithm is what makes deadlines safe: with it,
    # zero misses; without it, random exploration blows deadlines.
    assert on["missed_rounds"] == 0
    assert off["missed_rounds"] > 0


def test_abl_acquisition(benchmark, publish):
    payload = _memo(
        "acquisition", ablations.run_acquisition, ratio=2.0, rounds=40, seed=0
    )
    publish("abl_acquisition", ablations.render_acquisition(payload))
    benchmark(ablations.render_acquisition, payload)

    ehvi = payload["variants"]["ehvi"]
    random = payload["variants"]["random"]
    # EHVI reaches a front at least as good as random search while never
    # being substantially worse on end-to-end energy.
    assert ehvi["hv_ratio"] >= random["hv_ratio"] - 0.02
    assert ehvi["improvement"] >= random["improvement"] - 0.02
    assert ehvi["hv_ratio"] > 0.95


def test_abl_tau(benchmark, publish):
    payload = _memo("tau", ablations.run_tau, ratio=2.0, rounds=40, seed=0)
    publish("abl_tau", ablations.render_tau(payload))
    benchmark(ablations.render_tau, payload)

    variants = payload["variants"]
    # No tau choice may break deadline safety.
    assert all(v["missed"] == 0 for v in variants.values())
    # Longer tau -> fewer configurations fit into the exploration budget.
    taus = sorted(variants)
    assert variants[taus[-1]]["explored"] <= variants[taus[0]]["explored"]
    # The paper's default (5 s) must deliver solid savings.
    assert variants[5.0]["improvement"] > 0.15


def test_abl_exploit(benchmark, publish):
    payload = _memo("exploit", ablations.run_exploit, ratio=2.0, rounds=40, seed=0)
    publish("abl_exploit", ablations.render_exploit(payload))
    benchmark(ablations.render_exploit, payload)

    mixture = payload["variants"]["ilp_mixture"]
    single = payload["variants"]["single_config"]
    assert mixture["missed"] == 0 and single["missed"] == 0
    # The ILP mixture never loses to single-configuration exploitation and
    # typically saves energy by pairing a fast and a cheap configuration.
    assert mixture["energy"] <= single["energy"] * 1.005


def test_abl_parego(benchmark, publish):
    payload = _memo("parego", ablations.run_parego, batches=4, batch_size=10, seed=0)
    publish("abl_parego", ablations.render_parego(payload))
    benchmark(ablations.render_parego, payload)

    variants = payload["variants"]
    # EHVI is the most sample-efficient front builder at this budget; the
    # scalarized alternatives trail it but still find most of the front.
    assert variants["ehvi"]["hv_ratio"] >= variants["parego"]["hv_ratio"] - 0.01
    assert variants["ehvi"]["hv_ratio"] >= variants["random"]["hv_ratio"] - 0.01
    assert all(v["hv_ratio"] > 0.80 for v in variants.values())
    budgets = {v["evaluations"] for v in variants.values()}
    assert len(budgets) == 1  # strictly equal budgets


def test_abl_thermal(benchmark, publish):
    payload = _memo("thermal", ablations.run_thermal, rounds=30, seed=0)
    publish("abl_thermal", ablations.render_thermal(payload))
    benchmark(ablations.render_thermal, payload)

    static = payload["variants"]["static"]
    adaptive = payload["variants"]["adaptive"]
    # Throttling silently invalidates the static controller's plans ...
    assert static["restarts"] == 0
    assert static["drift_ewma"] > 0.08
    assert static["exploit_sprints"] >= 1
    # ... while the adaptive extension re-explores and stays accurate.
    assert adaptive["restarts"] >= 1
    assert adaptive["drift_ewma"] < 0.08
    assert adaptive["exploit_sprints"] <= static["exploit_sprints"]
    # Deadline safety holds either way (the guardian adapts regardless).
    assert static["missed"] == 0 and adaptive["missed"] == 0


def test_ext_accuracy_parity(benchmark, publish):
    from repro.experiments import ext_accuracy

    payload = _memo("accuracy", ext_accuracy.run, rounds=8, seed=0)
    publish("ext_accuracy", ext_accuracy.render(payload))
    benchmark(ext_accuracy.render, payload)

    performant = payload["results"]["performant"]
    bofl = payload["results"]["bofl"]
    # Pace control changes WHEN jobs run, never WHICH jobs run: the global
    # model's accuracy trajectory must be bit-identical.
    assert bofl["accuracy"] == performant["accuracy"]
    assert bofl["stragglers"] == 0
    # ... while spending measurably less energy.
    assert bofl["energy"] < 0.95 * performant["energy"]


def test_ext_fleet_energy(benchmark, publish):
    from repro.experiments import ext_fleet

    payload = _memo("fleet", ext_fleet.run, rounds=25, seed=0)
    publish("ext_fleet", ext_fleet.render(payload))
    benchmark(ext_fleet.render, payload)

    results = payload["results"]
    # Every client in the heterogeneous fleet saves energy ...
    for client_id, performant_energy in results["performant"]["per_client"].items():
        bofl_energy = results["bofl"]["per_client"][client_id]
        assert bofl_energy < performant_energy, client_id
    # ... no client ever misses its deadline under either pacing ...
    assert results["performant"]["stragglers"] == 0
    assert results["bofl"]["stragglers"] == 0
    # ... and the fleet-level saving is substantial.
    assert payload["fleet_saving"] > 0.12


def test_ext_controller_scoreboard(benchmark, publish):
    from repro.experiments import ext_controllers

    payload = _memo("scoreboard", ext_controllers.run, rounds=40, seed=0)
    publish("ext_controllers", ext_controllers.render(payload))
    benchmark(ext_controllers.render, payload)

    results = payload["results"]
    # Expected ordering of the field.
    assert results["oracle"]["energy"] <= results["bofl"]["energy"] * 1.02
    assert results["bofl"]["energy"] < results["performant"]["energy"]
    assert results["bofl"]["energy"] <= results["random_search"]["energy"] * 1.02
    assert results["bofl"]["energy"] <= results["linear_pace"]["energy"] * 1.02
    # Only the deadline-blind governor may miss rounds.
    for name, stats in results.items():
        if name != "ondemand":
            assert stats["missed"] == 0, name
