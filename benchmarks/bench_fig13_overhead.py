"""Fig. 13 — overhead of the MBO module.

Paper: 6-9 s and 50-70 J per MBO run (AGX faster than TX2 in latency),
0.4-0.7% of campaign energy overall.  AGX campaigns are shared with
bench_fig12 via the cache; TX2 campaigns are computed here.
"""

import pytest

from repro.experiments import fig13_overhead

PAYLOAD = {}


@pytest.fixture(scope="module")
def payload():
    if "fig13" not in PAYLOAD:
        PAYLOAD["fig13"] = fig13_overhead.run(rounds=100, seed=0)
    return PAYLOAD["fig13"]


def test_fig13_mbo_overhead(benchmark, publish, payload):
    publish("fig13", fig13_overhead.render(payload))
    benchmark(fig13_overhead.render, payload)

    agx = payload["per_device"]["agx"]
    tx2 = payload["per_device"]["tx2"]

    # (a) per-run costs in the paper's bands.
    assert 4.0 < agx["mean_latency"] < 10.0
    assert 4.0 < tx2["mean_latency"] < 12.0
    assert tx2["mean_latency"] > agx["mean_latency"]  # weaker host CPU
    assert 40.0 < agx["mean_energy"] < 80.0
    assert 30.0 < tx2["mean_energy"] < 80.0

    # (b) overall overhead: paper band 0.4-0.7%.  We accept < 1.5%: the
    # TX2/ViT cell lands at ~1.2% because that campaign's absolute energy
    # is the smallest of the grid while the MBO cost is fixed per run.
    for key, share in payload["overall"].items():
        assert 0.0 < share < 0.015, (key, share)
    agx_shares = [v for k, v in payload["overall"].items() if k.startswith("agx")]
    assert all(0.003 < s < 0.008 for s in agx_shares)  # paper band on AGX


def test_fig13_mbo_runs_are_few(benchmark, payload):
    benchmark(lambda: {k: v["runs"] for k, v in payload["per_device"].items()})
    # "MBO only happens a few times during the Pareto construction phase."
    for device, stats in payload["per_device"].items():
        assert stats["runs"] <= 3 * 12  # at most ~12 MBO rounds per task
