"""Fig. 12 — sensitivity to deadline length (the paper's headline table).

Full grid: 3 tasks x 5 deadline ratios x 3 controllers x 100 rounds.
Expected shape: improvement vs Performant increases with the ratio (paper
band 20.3-25.9%), regret vs Oracle decreases (paper band 1.2-3.4%).

This is the heavyweight benchmark of the suite (~5 minutes cold); its
campaigns are memoized for bench_fig13.
"""

import numpy as np
import pytest

from repro.experiments import fig12_sensitivity

PAYLOAD = {}


@pytest.fixture(scope="module")
def payload():
    if "fig12" not in PAYLOAD:
        PAYLOAD["fig12"] = fig12_sensitivity.run(rounds=100, seed=0)
    return PAYLOAD["fig12"]


def test_fig12_sensitivity(benchmark, publish, payload):
    publish("fig12", fig12_sensitivity.render(payload))
    benchmark(fig12_sensitivity.render, payload)

    ratios = payload["ratios"]
    for task, per_ratio in payload["tasks"].items():
        improvements = [per_ratio[r]["improvement"] for r in ratios]
        regrets = [per_ratio[r]["regret"] for r in ratios]

        # Band check: paper reports 20.3-25.9% improvement; we accept a
        # band of 15-32% on the simulated substrate.
        assert all(0.15 < i < 0.32 for i in improvements), (task, improvements)
        # Paper: 1.2-3.4% regret; accept < 6%.
        assert all(0.0 < g < 0.06 for g in regrets), (task, regrets)

        # Shape: improvement trends upward with deadline slack.
        assert improvements[-1] > improvements[0], task
        slope_up = np.polyfit(ratios, improvements, 1)[0]
        assert slope_up > 0, task

    # Regret trends downward.  Individual (task, ratio) cells are noisy on
    # a single seed, so the shape is checked on the cross-task average —
    # exactly how the paper's summary sentence reads the figure.
    mean_regret = {
        r: np.mean([payload["tasks"][t][r]["regret"] for t in payload["tasks"]])
        for r in ratios
    }
    assert mean_regret[ratios[-1]] < mean_regret[ratios[0]]
    slope_down = np.polyfit(ratios, [mean_regret[r] for r in ratios], 1)[0]
    assert slope_down < 0


def test_fig12_overall_bands(benchmark, payload):
    """The abstract's headline: ~26% max savings, 20%+ typical."""
    benchmark(lambda: sorted(
        cell["improvement"]
        for per_ratio in payload["tasks"].values()
        for cell in per_ratio.values()
    ))
    all_improvements = [
        cell["improvement"]
        for per_ratio in payload["tasks"].values()
        for cell in per_ratio.values()
    ]
    assert min(all_improvements) > 0.15
    assert max(all_improvements) > 0.24  # someone reaches the mid-20s
